// Package ctrl closes the loop the planner opens: it executes an audited
// migration plan against a live (simulated) network, observing the real
// topology and demand after every action, retrying transient operation
// failures with capped exponential backoff, and replanning the remainder
// when the environment drifts out from under the plan — the operational
// practices of paper §7.2 ("failures during operation duration",
// "simultaneous operations", "unexpected traffic surge") as an executable
// controller rather than prose.
//
// Every action is journaled to a crash-safe write-ahead log before and
// after it runs, so a controller crash loses at most the in-flight action
// — and drain/undrain operations are idempotent, so replaying that action
// on restart is harmless.
package ctrl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
)

// journalMagic is the record-envelope format tag. Every journal line is
//
//	KJ1 <crc32c-hex8> <entry-json>\n
//
// where the CRC32C (Castagnoli) covers the entry JSON bytes exactly as
// written. The version is part of the magic: a future format bump renames
// it to KJ2 and old readers fail loudly instead of misparsing.
const journalMagic = "KJ1"

// castagnoli is the CRC32C table shared by all journal encode/decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal corruption sentinels, matchable via errors.Is.
var (
	// ErrJournalExists means NewJournal found a journal already at the
	// path. Overwriting a prior campaign's log silently destroys the only
	// record of what was executed; callers must opt in explicitly via
	// NewJournalOverwrite (or resume with OpenJournal).
	ErrJournalExists = errors.New("ctrl: journal already exists")

	// ErrCorrupt means a journal holds a record that is malformed or fails
	// its checksum somewhere other than the final line — mid-file damage
	// that truncation during a crash cannot produce, so the log cannot be
	// trusted for recovery.
	ErrCorrupt = errors.New("ctrl: journal corrupt")
)

// Entry is one journal record. Op "begin" is written before an action is
// issued to the network, "done" after it is observed complete; "replan"
// marks a replanning decision so post-mortems can see why the executed
// order diverged from the original plan.
type Entry struct {
	Seq     int    `json:"seq"`               // index in the overall executed order
	Op      string `json:"op"`                // "begin" | "done" | "replan"
	Block   int    `json:"block"`             // block ID (begin/done)
	Name    string `json:"name,omitempty"`    // block name, for human readers
	Attempt int    `json:"attempt,omitempty"` // retry attempt that succeeded
	Detail  string `json:"detail,omitempty"`  // replan reason
}

// Journal is a write-ahead log of executed actions: one versioned,
// CRC32C-checksummed record per line, fsynced per append. On read it
// distinguishes the two failure modes durable logs actually have: a
// damaged final record is the signature of a crash mid-append (torn tail)
// and is dropped, recovering the clean prefix; a damaged record anywhere
// else is real corruption and fails with ErrCorrupt.
type Journal struct {
	path    string
	f       *os.File
	entries []Entry
}

// NewJournal creates a journal at path, refusing with ErrJournalExists if
// one (or any file) is already there — a prior campaign's log is evidence
// and must not be clobbered silently. Use NewJournalOverwrite to replace
// it deliberately, or OpenJournal to resume it.
func NewJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("%w at %s: pass an explicit overwrite (NewJournalOverwrite) to replace it, or OpenJournal to resume it", ErrJournalExists, path)
		}
		return nil, fmt.Errorf("ctrl: creating journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// NewJournalOverwrite creates a journal at path, truncating any existing
// file — the explicit opt-in NewJournal refuses to perform silently.
func NewJournalOverwrite(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctrl: creating journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// OpenJournal opens an existing journal for crash recovery: prior entries
// are replayed (a torn final line is dropped) and new appends go to the
// end. The file is truncated to the clean prefix first, so a recovered
// torn tail is not concatenated with the next append into one giant
// corrupt line. A missing file is created empty.
func OpenJournal(path string) (*Journal, error) {
	entries, cleanLen, err := readJournal(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		entries, cleanLen = nil, 0
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctrl: opening journal: %w", err)
	}
	if err := f.Truncate(cleanLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("ctrl: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(cleanLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ctrl: seeking journal: %w", err)
	}
	return &Journal{path: path, f: f, entries: entries}, nil
}

// ReadJournal reads a journal file without opening it for appends. A
// malformed or checksum-failing final line is tolerated (crash
// mid-append); damage anywhere else fails with an error wrapping
// ErrCorrupt.
func ReadJournal(path string) ([]Entry, error) {
	entries, _, err := readJournal(path)
	return entries, err
}

func readJournal(path string) ([]Entry, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("ctrl: reading journal: %w", err)
	}
	return parseJournal(data)
}

// parseJournal decodes journal bytes, returning the recovered entries and
// the byte length of the clean (undamaged) prefix.
func parseJournal(data []byte) (entries []Entry, cleanLen int64, err error) {
	cleanLen, err = ParseRecords(data, func(payload []byte) error {
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("unmarshaling record: %w", err)
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return entries, cleanLen, nil
}

// ParseRecords walks a KJ1 record stream, calling decode with each
// verified record payload and returning the byte length of the clean
// (undamaged) prefix. A record that fails its envelope check, its
// checksum, or decode is tolerated only as the final record — the torn
// tail of a crash mid-append, which is silently dropped; damage anywhere
// else fails with an error wrapping ErrCorrupt. Decoded records are
// committed in order: decode is never called for a record after a damaged
// one. This is the shared durable-record walker under the control
// journal and the serve layer's job journals.
func ParseRecords(data []byte, decode func(payload []byte) error) (cleanLen int64, err error) {
	var (
		pendingErr error
		offset     int
		line       int
	)
	for offset < len(data) {
		line++
		raw := data[offset:]
		next := len(data)
		complete := false
		if nl := bytes.IndexByte(raw, '\n'); nl >= 0 {
			raw = raw[:nl]
			next = offset + nl + 1
			complete = true
		}
		if pendingErr != nil {
			// The damaged record was not the last one: real corruption.
			return 0, pendingErr
		}
		switch payload, derr := decodeRecordLine(raw); {
		case len(raw) == 0:
			// Append emits exactly one non-empty line per record, so a
			// blank line is damage: tolerated at the tail, fatal mid-file.
			pendingErr = fmt.Errorf("%w: blank record at line %d", ErrCorrupt, line)
		case derr != nil:
			pendingErr = fmt.Errorf("%w: line %d: %v", ErrCorrupt, line, derr)
		case !complete:
			// The payload decodes but its trailing newline never hit disk:
			// the append's fsync cannot have completed, so the record was
			// never durable. Treat it as the torn tail it is.
			pendingErr = fmt.Errorf("%w: line %d: record missing trailing newline", ErrCorrupt, line)
		default:
			if derr := decode(payload); derr != nil {
				pendingErr = fmt.Errorf("%w: line %d: %v", ErrCorrupt, line, derr)
				break
			}
			cleanLen = int64(next)
		}
		offset = next
	}
	// A single damaged final record is the torn tail of a crash
	// mid-append: recover the clean prefix silently.
	return cleanLen, nil
}

// EncodeRecord wraps a payload (one JSON document, no raw newlines) in
// the versioned KJ1 line envelope: magic, CRC32C over the payload bytes
// exactly as given, payload, newline. The output is a deterministic
// function of the payload, preserving the byte-identical-journal
// determinism contract for every journal built on the envelope.
func EncodeRecord(payload []byte) ([]byte, error) {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return nil, fmt.Errorf("ctrl: record payload contains a newline")
	}
	line := make([]byte, 0, len(journalMagic)+1+8+1+len(payload)+1)
	line = append(line, journalMagic...)
	line = append(line, ' ')
	line = fmt.Appendf(line, "%08x", crc32.Checksum(payload, castagnoli))
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// encodeJournalLine renders one control-journal entry in the versioned
// envelope.
func encodeJournalLine(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("ctrl: encoding journal entry: %w", err)
	}
	return EncodeRecord(payload)
}

// decodeRecordLine parses and verifies one envelope line (without its
// trailing newline), returning the checksummed payload.
func decodeRecordLine(raw []byte) ([]byte, error) {
	rest, ok := bytes.CutPrefix(raw, []byte(journalMagic+" "))
	if !ok {
		return nil, fmt.Errorf("record does not start with %q (unversioned or torn record)", journalMagic)
	}
	if len(rest) < 9 || rest[8] != ' ' {
		return nil, errors.New("record missing checksum field")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(rest[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("unparsable checksum %q", rest[:8])
	}
	payload := rest[9:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("checksum mismatch: record says %08x, payload hashes to %08x", want, got)
	}
	return payload, nil
}

// Append writes one entry and syncs it to stable storage before returning.
func (j *Journal) Append(e Entry) error {
	b, err := encodeJournalLine(e)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("ctrl: appending journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ctrl: syncing journal: %w", err)
	}
	j.entries = append(j.entries, e)
	return nil
}

// Entries returns a copy of the journal's records.
func (j *Journal) Entries() []Entry {
	return append([]Entry(nil), j.entries...)
}

// CommittedPrefix returns the block IDs whose execution is journaled as
// complete ("done"), in execution order. A trailing "begin" without a
// "done" is the in-flight action at crash time; it is NOT included — the
// restarted controller re-issues it (idempotent).
func (j *Journal) CommittedPrefix() []int {
	var prefix []int
	for _, e := range j.entries {
		if e.Op == "done" {
			prefix = append(prefix, e.Block)
		}
	}
	return prefix
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
