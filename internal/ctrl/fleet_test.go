package ctrl

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"klotski/internal/core"
	"klotski/internal/pipeline"
	"klotski/internal/sched"
	"klotski/internal/sim"
)

// TestFleetByteIdentity plans several members concurrently under one
// shared pool — mixed planners, mixed shares, cut sharing on — and
// demands every member's plan match its solo serial reference exactly.
func TestFleetByteIdentity(t *testing.T) {
	task, _ := loopTask(t)
	refA, err := core.PlanAStar(task, core.Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	refD, err := core.PlanDP(task, core.Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}

	pool := sched.NewPool(4, nil)
	defer pool.Close()
	opts := core.Options{Alpha: 0.2, Workers: core.WorkersAdaptive}
	members := []FleetMember{
		{Name: "a1", Task: task, Planner: PlannerAStar, Options: opts},
		{Name: "d1", Task: task, Planner: PlannerDP, Options: opts},
		{Name: "a2", Task: task, Planner: PlannerAStar, Options: opts, MinShare: 2},
		{Name: "d2", Task: task, Planner: PlannerDP, Options: opts, MaxShare: 1},
	}
	rep, err := Fleet(context.Background(), members, FleetOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(members) || rep.Failed != 0 {
		t.Fatalf("completed %d failed %d of %d members", rep.Completed, rep.Failed, len(members))
	}
	if rep.Makespan <= 0 {
		t.Error("makespan not recorded")
	}
	for i := range rep.Members {
		m := &rep.Members[i]
		ref := refA
		if members[i].Planner == PlannerDP {
			ref = refD
		}
		if m.Err != nil {
			t.Fatalf("member %s: %v", m.Name, m.Err)
		}
		if !reflect.DeepEqual(m.Plan.Sequence, ref.Sequence) || m.Plan.Cost != ref.Cost {
			t.Fatalf("member %s diverged from solo reference:\n got %v (cost %.6f)\nwant %v (cost %.6f)",
				m.Name, m.Plan.Sequence, m.Plan.Cost, ref.Sequence, ref.Cost)
		}
	}
	if rep.Admitted < len(members) {
		t.Errorf("admitted %d < %d members", rep.Admitted, len(members))
	}
}

// TestFleetForcedPreemption holds a member at the starting line, preempts
// it with a higher-priority registration, and verifies the checkpoint-
// readmit-resume cycle completes with the undisturbed serial plan.
func TestFleetForcedPreemption(t *testing.T) {
	task, _ := loopTask(t)
	ref, err := core.PlanAStar(task, core.Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}

	pool := sched.NewPool(1, nil)
	defer pool.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	fleetTestPlanHook = func(name string) {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	defer func() { fleetTestPlanHook = nil }()

	fo := &FleetOptions{Pool: pool, MaxPreemptions: 16}
	done := make(chan FleetMemberReport, 1)
	go func() {
		done <- planMember(context.Background(), FleetMember{
			Name: "victim", Task: task, Planner: PlannerAStar,
			Options: core.Options{Alpha: 0.2, Workers: core.WorkersAdaptive},
		}, fo, nil)
	}()
	<-started
	// The victim holds the single-worker pool's whole reservation, so this
	// registration must preempt it — deterministically.
	hi, err := pool.Register("hi", sched.ClientOptions{Priority: 1, MinShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	hi.Close() // frees the reservation for the victim's re-admission
	var rep FleetMemberReport
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("preempted member never finished")
	}
	if rep.Err != nil {
		t.Fatalf("member error: %v", rep.Err)
	}
	if rep.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", rep.Preemptions)
	}
	if !reflect.DeepEqual(rep.Plan.Sequence, ref.Sequence) || rep.Plan.Cost != ref.Cost {
		t.Fatalf("resumed plan diverged from serial reference:\n got %v (cost %.6f)\nwant %v (cost %.6f)",
			rep.Plan.Sequence, rep.Plan.Cost, ref.Sequence, ref.Cost)
	}
}

// TestFleetMaxPreemptionsFallsBack caps the member at one preemption and
// keeps the preemptor registered for the whole run: the member must
// finish its resumed leg without a pool client — and still produce the
// serial plan.
func TestFleetMaxPreemptionsFallsBack(t *testing.T) {
	task, _ := loopTask(t)
	ref, err := core.PlanAStar(task, core.Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}

	pool := sched.NewPool(1, nil)
	defer pool.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	fleetTestPlanHook = func(name string) {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	defer func() { fleetTestPlanHook = nil }()

	fo := &FleetOptions{Pool: pool, MaxPreemptions: 1}
	done := make(chan FleetMemberReport, 1)
	go func() {
		done <- planMember(context.Background(), FleetMember{
			Name: "victim", Task: task, Planner: PlannerAStar,
			Options: core.Options{Alpha: 0.2, Workers: core.WorkersAdaptive},
		}, fo, nil)
	}()
	<-started
	hi, err := pool.Register("hi", sched.ClientOptions{Priority: 1, MinShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer hi.Close() // held until the member has finished clientless
	close(release)
	var rep FleetMemberReport
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("starved member never finished")
	}
	if rep.Err != nil {
		t.Fatalf("member error: %v", rep.Err)
	}
	if rep.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", rep.Preemptions)
	}
	if !reflect.DeepEqual(rep.Plan.Sequence, ref.Sequence) || rep.Plan.Cost != ref.Cost {
		t.Fatal("clientless fallback plan diverged from serial reference")
	}
}

// TestFleetRequiresPool pins the one hard input error.
func TestFleetRequiresPool(t *testing.T) {
	if _, err := Fleet(context.Background(), nil, FleetOptions{}); err == nil {
		t.Fatal("Fleet accepted a nil pool")
	}
}

// TestCampaignPoolMatchesSerial runs the same chaos campaign serially and
// through a shared pool and requires byte-identical reports.
func TestCampaignPoolMatchesSerial(t *testing.T) {
	task, _ := loopTask(t)
	base := CampaignOptions{
		Seeds:    6,
		Seed:     100,
		Schedule: sim.ScheduleOptions{Faults: 3},
		Run: Options{
			Config: pipeline.Config{Options: core.Options{Workers: core.WorkersAdaptive}},
		},
	}
	serial, err := Campaign(context.Background(), task, base)
	if err != nil {
		t.Fatal(err)
	}

	pool := sched.NewPool(4, nil)
	defer pool.Close()
	pooled := base
	pooled.Pool = pool
	rep, err := Campaign(context.Background(), task, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, rep) {
		t.Fatalf("pooled campaign report diverged from serial:\n%+v\n%+v", serial, rep)
	}
}
