package ctrl

import (
	"context"
	"strings"
	"testing"

	"klotski/internal/core"
	"klotski/internal/sim"
)

// TestRunGapSkipAvoidsDriftReplans: the same organic-growth world that
// forces drift replans in TestRunDriftReplansOnGrowth must, with the
// certified-gap skip armed, keep executing the original plan instead —
// its remaining cost sits on the completion lower bound (gap 0) and the
// re-audit proves it still safe under the grown demands, so a replan can
// buy nothing.
func TestRunGapSkipAvoidsDriftReplans(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, nil, 1)
	world.SetDemandGrowth(0.02)
	out, err := Run(context.Background(), task, world, Options{
		Sleep:            noSleep,
		Seed:             1,
		DriftThreshold:   0.03,
		GapSkipThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("gap-skipping run should complete")
	}
	if out.GapSkips == 0 {
		t.Fatal("drift above the threshold never exercised the gap-skip certificate")
	}
	if out.DriftReplans != 0 {
		t.Fatalf("gap skip should have absorbed all drift replans, got %d", out.DriftReplans)
	}
	if out.BoundaryViolations != 0 {
		t.Fatalf("skipped replans let %d unsafe boundary states onto the live network", out.BoundaryViolations)
	}
	if err := core.ValidateSequence(task, out.Executed, nil); err != nil {
		t.Fatalf("executed order invalid: %v", err)
	}
}

// TestRunGapSkipDisabledByDefault: with GapSkipThreshold unset the drift
// loop's behavior is untouched — drift replans happen, no skips counted.
func TestRunGapSkipDisabledByDefault(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, nil, 1)
	world.SetDemandGrowth(0.02)
	out, err := Run(context.Background(), task, world, Options{
		Sleep:          noSleep,
		Seed:           1,
		DriftThreshold: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.GapSkips != 0 {
		t.Fatalf("gap skip fired while disabled: %d", out.GapSkips)
	}
	if out.DriftReplans == 0 {
		t.Fatal("baseline drift behavior changed: no drift replans")
	}
}

// TestCampaignAggregatesGapSkips: campaign reports must roll gap skips up
// and surface them in the one-line summary.
func TestCampaignAggregatesGapSkips(t *testing.T) {
	task, _ := loopTask(t)
	rep, err := Campaign(context.Background(), task, CampaignOptions{
		Seeds:    4,
		Seed:     700,
		Schedule: sim.ScheduleOptions{Faults: 3, Telemetry: true, SurgeSteps: 2},
		Run: Options{
			DriftThreshold:   0.05,
			GapSkipThreshold: 0.05,
			DemandMargin:     1.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundaryViolations != 0 {
		t.Fatalf("campaign observed %d boundary violations", rep.BoundaryViolations)
	}
	if rep.GapSkips > 0 && !strings.Contains(rep.String(), "gap skips") {
		t.Errorf("report should surface gap skips: %s", rep)
	}
}
