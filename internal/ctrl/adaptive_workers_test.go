package ctrl

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"klotski/internal/core"
	"klotski/internal/sim"
)

// TestRunAdaptiveWorkersMatchesSerial pins the control loop's
// replayability contract under the adaptive worker policy: planning with
// Workers=WorkersAdaptive (including every replan — each replan resolves
// a fresh policy) must execute the exact action sequence of a serial run,
// fault for fault, because adaptive decisions are verdict-neutral and
// never reach plan content.
func TestRunAdaptiveWorkersMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, seed := range []int64{3, 11} {
		run := func(workers int) (*Outcome, error) {
			task, _ := loopTask(t)
			schedule := sim.RandomSchedule(task, seed, sim.ScheduleOptions{Faults: 3})
			world := sim.NewWorld(task, schedule, seed)
			opts := Options{Sleep: noSleep, Seed: seed}
			opts.Config.Options.Workers = workers
			return Run(context.Background(), task, world, opts)
		}
		serial, errS := run(0)
		adaptive, errA := run(core.WorkersAdaptive)
		if errString(errS) != errString(errA) {
			t.Fatalf("seed %d: errors differ: %v vs %v", seed, errS, errA)
		}
		if errS != nil {
			continue
		}
		if !reflect.DeepEqual(serial, adaptive) {
			t.Fatalf("seed %d: outcomes differ:\nserial:   %+v\nadaptive: %+v",
				seed, serial, adaptive)
		}
	}
}
