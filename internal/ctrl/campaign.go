package ctrl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"klotski/internal/migration"
	"klotski/internal/sched"
	"klotski/internal/sim"
)

// CampaignOptions parameterizes a Monte Carlo chaos campaign: the same
// migration executed under many independently drawn fault trains.
type CampaignOptions struct {
	Seeds int   // number of runs (default 16)
	Seed  int64 // base seed; run s uses absolute seed Seed+s

	// Schedule parameterizes the per-run fault draw.
	Schedule sim.ScheduleOptions

	// Run is the per-run controller configuration. Plan and Journal are
	// ignored (each run plans for its own drifted world and campaigns do
	// not journal); Sleep defaults to a no-op so thousands of simulated
	// retries do not wall-clock sleep.
	Run Options

	// Pool, when non-nil, runs the campaign's seeds concurrently under
	// the shared scheduler pool: each seed registers a client (admission
	// control throttles concurrency to the pool's worker budget) and its
	// run's planners submit their parallel phases through it. Each seed's
	// run is fully determined by its seed (own world, own rng, no-op
	// sleeper) and outcomes are folded in ascending seed order, so the
	// CampaignReport is byte-identical to the serial campaign's.
	Pool *sched.Pool
}

// CampaignReport aggregates a chaos campaign. The paper's safety claim is
// about plans; this report is about *operations*: how often the closed
// loop carries a migration through a hostile environment, and at what
// cost in retries and replans.
type CampaignReport struct {
	Seeds     int
	Completed int

	CompletionRate float64
	TotalRetries   int
	TotalReplans   int

	// Drift-loop aggregates (all zero unless Run.DriftThreshold is set).
	DriftReplans    int // replans triggered by observed demand drift
	GapSkips        int // drift replans skipped on a certified optimality gap
	TelemetryFaults int // demand observations dropped or failing sanity checks
	DegradedRuns    int // runs executed against the inflated-demand envelope

	// BoundaryViolations across all runs — any nonzero value means the
	// controller let the live network reach an unsafe boundary state.
	BoundaryViolations int

	PeakUtil  float64 // worst boundary utilization across runs
	WorstSeed int64   // absolute seed of the worst-peak run

	// FailedSeeds lists the absolute seeds of runs that did not complete
	// (replanning infeasible, budgets exhausted), for replay.
	FailedSeeds []int64
}

// Campaign executes the task once per seed, each run against a fresh
// world with its own random fault train, and aggregates the outcomes. An
// individual run failing to complete is campaign data, not an error; only
// infrastructure failures (e.g. cancellation) abort the campaign.
func Campaign(ctx context.Context, task *migration.Task, opts CampaignOptions) (*CampaignReport, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 16
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runOpts := opts.Run
	runOpts.Plan = nil
	runOpts.Journal = nil
	if runOpts.Sleep == nil {
		runOpts.Sleep = func(time.Duration) {}
	}

	rep := &CampaignReport{Seeds: opts.Seeds, WorstSeed: opts.Seed}
	if opts.Pool != nil {
		// Concurrent mode: every seed's run is a pure function of its
		// seed, so the runs may execute in any order and any interleaving;
		// only the FOLD below must stay in ascending seed order to keep
		// the report byte-identical to the serial campaign's (same sums,
		// same FailedSeeds order, same strictly-greater WorstSeed rule).
		outs := make([]*Outcome, opts.Seeds)
		errs := make([]error, opts.Seeds)
		var wg sync.WaitGroup
		for s := 0; s < opts.Seeds; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				seed := opts.Seed + int64(s)
				client, err := opts.Pool.Register(fmt.Sprintf("campaign-%d", seed), sched.ClientOptions{})
				if err != nil {
					errs[s] = err
					return
				}
				defer client.Close()
				schedule := sim.RandomSchedule(task, seed, opts.Schedule)
				world := sim.NewWorld(task, schedule, seed)
				ro := runOpts
				ro.Seed = seed
				ro.Config.Options.Sched = client
				outs[s], errs[s] = Run(ctx, task, world, ro)
			}(s)
		}
		wg.Wait()
		for s := 0; s < opts.Seeds; s++ {
			if outs[s] == nil {
				// Registration failed (pool closed) or the run never
				// started: infrastructure, not campaign data.
				return nil, fmt.Errorf("ctrl: campaign seed %d did not run: %w", opts.Seed+int64(s), errs[s])
			}
			if errs[s] != nil && ctx.Err() != nil {
				return nil, errs[s]
			}
			rep.fold(opts.Seed+int64(s), outs[s])
		}
		rep.CompletionRate = float64(rep.Completed) / float64(rep.Seeds)
		return rep, nil
	}
	for s := 0; s < opts.Seeds; s++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ctrl: campaign cancelled after %d of %d runs: %w", s, opts.Seeds, err)
		}
		seed := opts.Seed + int64(s)
		schedule := sim.RandomSchedule(task, seed, opts.Schedule)
		world := sim.NewWorld(task, schedule, seed)
		ro := runOpts
		ro.Seed = seed
		out, err := Run(ctx, task, world, ro)
		if err != nil && ctx.Err() != nil {
			return nil, err
		}
		rep.fold(seed, out)
	}
	rep.CompletionRate = float64(rep.Completed) / float64(rep.Seeds)
	return rep, nil
}

// fold merges one seed's outcome into the report, in ascending seed
// order — the single accumulation path both campaign modes share.
func (r *CampaignReport) fold(seed int64, out *Outcome) {
	r.TotalRetries += out.Retries
	r.TotalReplans += out.Replans
	r.DriftReplans += out.DriftReplans
	r.GapSkips += out.GapSkips
	r.TelemetryFaults += out.TelemetryFaults
	r.DegradedRuns += out.DegradedRuns
	r.BoundaryViolations += out.BoundaryViolations
	if out.Completed {
		r.Completed++
	} else {
		r.FailedSeeds = append(r.FailedSeeds, seed)
	}
	if out.PeakUtil > r.PeakUtil {
		r.PeakUtil = out.PeakUtil
		r.WorstSeed = seed
	}
}

// String renders a one-line campaign summary.
func (r *CampaignReport) String() string {
	s := fmt.Sprintf("chaos campaign over %d seeds: %.0f%% completed, %d retries, %d replans, %d boundary violations, peak util %.3f (worst seed %d)",
		r.Seeds, 100*r.CompletionRate, r.TotalRetries, r.TotalReplans,
		r.BoundaryViolations, r.PeakUtil, r.WorstSeed)
	if r.DriftReplans+r.GapSkips+r.TelemetryFaults+r.DegradedRuns > 0 {
		s += fmt.Sprintf("; drift: %d drift replans, %d gap skips, %d telemetry faults, %d degraded runs",
			r.DriftReplans, r.GapSkips, r.TelemetryFaults, r.DegradedRuns)
	}
	return s
}
