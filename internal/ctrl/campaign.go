package ctrl

import (
	"context"
	"fmt"
	"time"

	"klotski/internal/migration"
	"klotski/internal/sim"
)

// CampaignOptions parameterizes a Monte Carlo chaos campaign: the same
// migration executed under many independently drawn fault trains.
type CampaignOptions struct {
	Seeds int   // number of runs (default 16)
	Seed  int64 // base seed; run s uses absolute seed Seed+s

	// Schedule parameterizes the per-run fault draw.
	Schedule sim.ScheduleOptions

	// Run is the per-run controller configuration. Plan and Journal are
	// ignored (each run plans for its own drifted world and campaigns do
	// not journal); Sleep defaults to a no-op so thousands of simulated
	// retries do not wall-clock sleep.
	Run Options
}

// CampaignReport aggregates a chaos campaign. The paper's safety claim is
// about plans; this report is about *operations*: how often the closed
// loop carries a migration through a hostile environment, and at what
// cost in retries and replans.
type CampaignReport struct {
	Seeds     int
	Completed int

	CompletionRate float64
	TotalRetries   int
	TotalReplans   int

	// Drift-loop aggregates (all zero unless Run.DriftThreshold is set).
	DriftReplans    int // replans triggered by observed demand drift
	GapSkips        int // drift replans skipped on a certified optimality gap
	TelemetryFaults int // demand observations dropped or failing sanity checks
	DegradedRuns    int // runs executed against the inflated-demand envelope

	// BoundaryViolations across all runs — any nonzero value means the
	// controller let the live network reach an unsafe boundary state.
	BoundaryViolations int

	PeakUtil  float64 // worst boundary utilization across runs
	WorstSeed int64   // absolute seed of the worst-peak run

	// FailedSeeds lists the absolute seeds of runs that did not complete
	// (replanning infeasible, budgets exhausted), for replay.
	FailedSeeds []int64
}

// Campaign executes the task once per seed, each run against a fresh
// world with its own random fault train, and aggregates the outcomes. An
// individual run failing to complete is campaign data, not an error; only
// infrastructure failures (e.g. cancellation) abort the campaign.
func Campaign(ctx context.Context, task *migration.Task, opts CampaignOptions) (*CampaignReport, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 16
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runOpts := opts.Run
	runOpts.Plan = nil
	runOpts.Journal = nil
	if runOpts.Sleep == nil {
		runOpts.Sleep = func(time.Duration) {}
	}

	rep := &CampaignReport{Seeds: opts.Seeds, WorstSeed: opts.Seed}
	for s := 0; s < opts.Seeds; s++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ctrl: campaign cancelled after %d of %d runs: %w", s, opts.Seeds, err)
		}
		seed := opts.Seed + int64(s)
		schedule := sim.RandomSchedule(task, seed, opts.Schedule)
		world := sim.NewWorld(task, schedule, seed)
		ro := runOpts
		ro.Seed = seed
		out, err := Run(ctx, task, world, ro)
		if err != nil && ctx.Err() != nil {
			return nil, err
		}
		rep.TotalRetries += out.Retries
		rep.TotalReplans += out.Replans
		rep.DriftReplans += out.DriftReplans
		rep.GapSkips += out.GapSkips
		rep.TelemetryFaults += out.TelemetryFaults
		rep.DegradedRuns += out.DegradedRuns
		rep.BoundaryViolations += out.BoundaryViolations
		if out.Completed {
			rep.Completed++
		} else {
			rep.FailedSeeds = append(rep.FailedSeeds, seed)
		}
		if out.PeakUtil > rep.PeakUtil {
			rep.PeakUtil = out.PeakUtil
			rep.WorstSeed = seed
		}
	}
	rep.CompletionRate = float64(rep.Completed) / float64(rep.Seeds)
	return rep, nil
}

// String renders a one-line campaign summary.
func (r *CampaignReport) String() string {
	s := fmt.Sprintf("chaos campaign over %d seeds: %.0f%% completed, %d retries, %d replans, %d boundary violations, peak util %.3f (worst seed %d)",
		r.Seeds, 100*r.CompletionRate, r.TotalRetries, r.TotalReplans,
		r.BoundaryViolations, r.PeakUtil, r.WorstSeed)
	if r.DriftReplans+r.GapSkips+r.TelemetryFaults+r.DegradedRuns > 0 {
		s += fmt.Sprintf("; drift: %d drift replans, %d gap skips, %d telemetry faults, %d degraded runs",
			r.DriftReplans, r.GapSkips, r.TelemetryFaults, r.DegradedRuns)
	}
	return s
}
