package ctrl

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// journalBytes writes n begin/done entry pairs through the real Append
// path and returns the raw file contents plus the entries written.
func journalBytes(t *testing.T, n int) ([]byte, []Entry) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Entry
	for i := 0; i < n; i++ {
		for _, op := range []string{"begin", "done"} {
			e := Entry{Seq: i, Op: op, Block: i, Name: "blk"}
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
			want = append(want, e)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, want
}

// TestNewJournalRefusesClobber is the regression test for the silent
// O_TRUNC clobber: creating a journal where one exists must fail with
// ErrJournalExists, and only the explicit overwrite constructor replaces
// it.
func TestNewJournalRefusesClobber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Seq: 0, Op: "done", Block: 7}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := NewJournal(path); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("NewJournal over existing file: err = %v, want ErrJournalExists", err)
	}
	// The refused create must not have damaged the original.
	entries, err := ReadJournal(path)
	if err != nil || len(entries) != 1 || entries[0].Block != 7 {
		t.Fatalf("journal damaged by refused create: %v, %v", entries, err)
	}

	j2, err := NewJournalOverwrite(path)
	if err != nil {
		t.Fatalf("explicit overwrite refused: %v", err)
	}
	j2.Close()
	if entries, err := ReadJournal(path); err != nil || len(entries) != 0 {
		t.Fatalf("overwrite did not truncate: %v, %v", entries, err)
	}
}

// TestJournalTruncationAtEveryOffset truncates a valid journal at every
// byte offset and requires each prefix to either recover cleanly (the
// entries whose records are fully durable, in order) or — never — yield
// extra or corrupted entries. Truncation is tail damage by construction,
// so no offset may surface ErrCorrupt.
func TestJournalTruncationAtEveryOffset(t *testing.T) {
	data, want := journalBytes(t, 3)
	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "trunc.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// A record is durable only when its trailing newline is on disk.
		durable := bytes.Count(data[:cut], []byte{'\n'})

		entries, err := ReadJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: truncation misread as corruption: %v", cut, err)
		}
		if len(entries) != durable {
			t.Fatalf("cut=%d: recovered %d entries, want %d", cut, len(entries), durable)
		}
		if durable > 0 && !reflect.DeepEqual(entries, want[:durable]) {
			t.Fatalf("cut=%d: recovered entries diverge: %v", cut, entries)
		}

		// Recovery must also be appendable: the torn tail is dropped from
		// the file so the next record does not merge with it.
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: OpenJournal: %v", cut, err)
		}
		next := Entry{Seq: 99, Op: "done", Block: 99}
		if err := j.Append(next); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		j.Close()
		entries, err = ReadJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: reread after append: %v", cut, err)
		}
		if len(entries) != durable+1 || entries[durable] != next {
			t.Fatalf("cut=%d: append after recovery lost data: %v", cut, entries)
		}
	}
}

// TestJournalFlippedByteMidFile flips every byte that belongs to a record
// other than the last two lines (where damage is indistinguishable from a
// torn tail) and requires an explicit ErrCorrupt — mid-file damage must
// never be silently accepted.
func TestJournalFlippedByteMidFile(t *testing.T) {
	data, _ := journalBytes(t, 3) // 6 lines
	lines := bytes.SplitAfter(data, []byte{'\n'})
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 4 {
		t.Fatalf("fixture too small: %d lines", len(lines))
	}
	// Damage strictly before the penultimate line is always mid-file: even
	// a flipped newline merges two records that are followed by more.
	safeEnd := len(data) - len(lines[len(lines)-1]) - len(lines[len(lines)-2])

	dir := t.TempDir()
	for pos := 0; pos < safeEnd; pos++ {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0x01
		path := filepath.Join(dir, "flip.wal")
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJournal(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
		if _, err := OpenJournal(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: OpenJournal accepted a corrupt journal: %v", pos, err)
		}
	}
}

// TestJournalFlippedByteInTail: damage confined to the final record is the
// torn-tail signature and recovers the clean prefix.
func TestJournalFlippedByteInTail(t *testing.T) {
	data, want := journalBytes(t, 3)
	last := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	mutated := append([]byte(nil), data...)
	mutated[last+10] ^= 0x01 // inside the final record's body
	path := filepath.Join(t.TempDir(), "tail.wal")
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("tail damage misread as corruption: %v", err)
	}
	if !reflect.DeepEqual(entries, want[:len(want)-1]) {
		t.Fatalf("recovered %d entries, want %d", len(entries), len(want)-1)
	}
}

// TestJournalEmptyAndMissing: an empty journal is a valid empty log; a
// missing one is created by OpenJournal and errors from ReadJournal.
func TestJournalEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(empty)
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty journal: %v, %v", entries, err)
	}

	missing := filepath.Join(dir, "missing.wal")
	if _, err := ReadJournal(missing); err == nil {
		t.Fatal("ReadJournal on a missing file should error")
	}
	j, err := OpenJournal(missing)
	if err != nil {
		t.Fatalf("OpenJournal should create a missing journal: %v", err)
	}
	if err := j.Append(Entry{Seq: 0, Op: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if entries, err := ReadJournal(missing); err != nil || len(entries) != 1 {
		t.Fatalf("created journal: %v, %v", entries, err)
	}
}

// TestJournalRejectsUnversionedRecords: a journal written by a format this
// binary does not implement (no KJ1 envelope) must not be silently
// reinterpreted.
func TestJournalRejectsUnversionedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.wal")
	content := `{"seq":0,"op":"done","block":1}` + "\n" + `{"seq":1,"op":"done","block":2}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unversioned journal: err = %v, want ErrCorrupt", err)
	}
}
