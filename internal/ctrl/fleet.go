package ctrl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"klotski/internal/bound"
	"klotski/internal/core"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/sched"
)

// Fleet-scale planning: N fabrics planned concurrently under one shared
// worker pool.
//
// A production operator rarely plans one fabric at a time; campaigns plan
// dozens, and the naive approach — one fully parallel planner per fabric —
// oversubscribes the host N-fold while the serial approach idles it.
// Fleet admits each member to the shared sched.Pool (blocking when the
// pool's reservations are full), hands the member's planner a pool client
// to run its parallel phases through, and aggregates the per-member plans
// and certificates into one report.
//
// Preemption: when a higher-priority member's admission preempts a
// running plan, the victim's pool client's Preempted channel closes; the
// member's watcher cancels the planning context, the planner checkpoints
// through the existing *core.Interrupted machinery, the client is closed
// (releasing its reservation to the preemptor), and the member blocks in
// re-registration until capacity frees, then resumes the checkpoint under
// a fresh client. Because plans are byte-identical at any worker count,
// share, or interruption point, a preempted-and-resumed member produces
// exactly the plan an undisturbed run would have.

// fleetTestPlanHook, when non-nil, runs in planMember immediately before
// each planning leg (the preemption watcher is already armed). Tests use
// it to hold a member at the starting line until a higher-priority
// registration has preempted it, making preempt-checkpoint-resume cycles
// deterministic.
var fleetTestPlanHook func(name string)

// FleetMember is one fabric's planning job.
type FleetMember struct {
	Name string
	Task *migration.Task

	// Planner selects the planning algorithm ("" = A*); Options are the
	// member's planning options. Options.Sched is overwritten with the
	// member's pool client; Options.Bound, when nil and cut sharing is on,
	// receives a store-attached engine.
	Planner Planner
	Options core.Options

	// Priority orders pool preemption (higher preempts lower); MinShare /
	// MaxShare bound the member's worker share (see sched.ClientOptions).
	Priority int
	MinShare int
	MaxShare int
}

// Planner mirrors pipeline.Planner's dispatch for the planners that
// support pool attachment and checkpoint resume. Kept local so ctrl does
// not grow a pipeline dependency for fleet planning.
type Planner string

// Fleet planner names.
const (
	PlannerAStar Planner = "astar"
	PlannerDP    Planner = "dp"
)

func (p Planner) plan(ctx context.Context, task *migration.Task, opts core.Options) (*core.Plan, error) {
	switch p {
	case PlannerAStar, "":
		return core.PlanAStarContext(ctx, task, opts)
	case PlannerDP:
		return core.PlanDPContext(ctx, task, opts)
	}
	return nil, fmt.Errorf("ctrl: unknown fleet planner %q", p)
}

// FleetOptions parameterizes a fleet run.
type FleetOptions struct {
	// Pool is the shared worker pool. Required.
	Pool *sched.Pool

	// NoSharedCuts disables the fleet-wide bound.Store. With sharing on
	// (the default), members planning the same fabric structure exchange
	// structural cuts: plan bytes are unaffected, but search-effort
	// metrics (states expanded) become arrival-order dependent, so
	// deterministic benchmarks switch sharing off.
	NoSharedCuts bool

	// MaxPreemptions bounds checkpoint-resume cycles per member before
	// the member finishes without a pool client (default 16).
	MaxPreemptions int

	// Recorder (nil-safe) receives fleet.plans_admitted and aggregates
	// the members' planner counters when the members' own options carry
	// no recorder.
	Recorder *obs.Recorder
}

// FleetMemberReport is one member's outcome.
type FleetMemberReport struct {
	Name        string
	Plan        *core.Plan
	Err         error
	Preemptions int           // checkpoint-resume cycles forced by the pool
	Wait        time.Duration // cumulative admission blocking
	Elapsed     time.Duration // admission through final plan (or error)
}

// FleetReport aggregates a fleet run.
type FleetReport struct {
	Members   []FleetMemberReport
	Admitted  int // pool admissions, including post-preemption re-admissions
	Completed int
	Failed    int

	Makespan    time.Duration // wall clock for the whole fleet
	TotalCost   float64       // sum of completed members' plan costs
	CrossHits   int           // structural cuts imported across members
	Preemptions int
}

// Fleet plans every member concurrently under opts.Pool and returns the
// aggregate report. Individual member failures are fleet data (recorded
// in the member report and counted in Failed), not an error; only a nil
// pool or a cancelled context fail the fleet itself. Member order in the
// report matches the input order regardless of completion order.
func Fleet(ctx context.Context, members []FleetMember, opts FleetOptions) (*FleetReport, error) {
	if opts.Pool == nil {
		return nil, errors.New("ctrl: fleet requires a worker pool")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxPreemptions <= 0 {
		opts.MaxPreemptions = 16
	}
	var store *bound.Store
	if !opts.NoSharedCuts {
		store = bound.NewStore()
	}

	rep := &FleetReport{Members: make([]FleetMemberReport, len(members))}
	start := time.Now()
	var wg sync.WaitGroup
	for i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep.Members[i] = planMember(ctx, members[i], &opts, store)
		}(i)
	}
	wg.Wait()
	rep.Makespan = time.Since(start)

	for i := range rep.Members {
		m := &rep.Members[i]
		rep.Preemptions += m.Preemptions
		rep.Admitted += 1 + m.Preemptions
		if m.Err != nil || m.Plan == nil {
			rep.Failed++
			continue
		}
		rep.Completed++
		rep.TotalCost += m.Plan.Cost
		rep.CrossHits += m.Plan.Metrics.BoundCrossHits
	}
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("ctrl: fleet cancelled: %w", err)
	}
	return rep, nil
}

// planMember runs one member to completion: admit, plan, and — as often
// as the pool preempts it — checkpoint, re-admit, resume.
func planMember(ctx context.Context, m FleetMember, fo *FleetOptions, store *bound.Store) FleetMemberReport {
	rep := FleetMemberReport{Name: m.Name}
	start := time.Now()
	defer func() { rep.Elapsed = time.Since(start) }()
	admit := func() (*sched.Client, error) {
		w := time.Now()
		c, err := fo.Pool.Register(m.Name, sched.ClientOptions{
			Priority: m.Priority, MinShare: m.MinShare, MaxShare: m.MaxShare,
		})
		rep.Wait += time.Since(w)
		if err == nil {
			fo.Recorder.FleetPlanAdmitted()
		}
		return c, err
	}

	copts := m.Options
	if store != nil && copts.Bound == nil {
		eng := core.NewBoundEngine(m.Task, copts)
		eng.Attach(store)
		copts.Bound = eng
	}

	client, err := admit()
	if err != nil {
		rep.Err = err
		return rep
	}

	var cp *core.Checkpoint
	for {
		copts.Sched = client

		// Watch for preemption while the planner runs: the pool closes
		// Preempted, the watcher cancels the planning context, and the
		// planner checkpoints cooperatively.
		pctx := ctx
		var cancel context.CancelFunc
		planned := make(chan struct{})
		if client != nil {
			pctx, cancel = context.WithCancel(ctx)
			go func(c *sched.Client) {
				select {
				case <-c.Preempted():
					cancel()
				case <-planned:
				}
			}(client)
		}

		if fleetTestPlanHook != nil {
			fleetTestPlanHook(m.Name)
		}

		// A preemption that lands before the leg starts is honored without
		// burning the leg: the planner would otherwise run on an already-
		// cancelled context (or, on a small fabric, finish before noticing
		// it). There is no new checkpoint to take, so the member just gives
		// its workers back and queues for re-admission — or finishes
		// clientless past the starvation cap.
		if client != nil {
			select {
			case <-client.Preempted():
				close(planned)
				cancel()
				client.Close()
				rep.Preemptions++
				if rep.Preemptions >= fo.MaxPreemptions {
					client = nil
					copts.Sched = nil
					continue
				}
				if client, err = admit(); err != nil {
					rep.Err = err
					return rep
				}
				continue
			default:
			}
		}
		var plan *core.Plan
		if cp != nil {
			plan, err = core.Resume(pctx, cp, copts)
		} else {
			plan, err = m.Planner.plan(pctx, m.Task, copts)
		}
		close(planned)
		if cancel != nil {
			cancel()
		}

		// Preemption is detected from the channel itself, after the
		// planner returns — a plan that raced its completion against the
		// preemption signal is still a finished plan.
		preempted := false
		if client != nil {
			select {
			case <-client.Preempted():
				preempted = true
			default:
			}
			client.Close()
		}
		if err == nil {
			rep.Plan = plan
			return rep
		}
		var intr *core.Interrupted
		if !preempted || !errors.As(err, &intr) {
			// A real failure, an outer cancellation, or a planner that
			// cannot checkpoint: the member is done.
			rep.Err = err
			return rep
		}
		rep.Preemptions++
		cp = intr.Checkpoint
		if rep.Preemptions >= fo.MaxPreemptions {
			// Starvation guard: finish the leg without a pool client (the
			// classic per-plan goroutines), byte-identically.
			client = nil
			copts.Sched = nil
			continue
		}
		client, err = admit()
		if err != nil {
			rep.Err = err
			return rep
		}
	}
}

// String renders a one-line fleet summary.
func (r *FleetReport) String() string {
	return fmt.Sprintf("fleet of %d plans: %d completed, %d failed, %d admissions, %d preemptions, %d cross-plan cuts, total cost %.3f, makespan %s",
		len(r.Members), r.Completed, r.Failed, r.Admitted, r.Preemptions, r.CrossHits, r.TotalCost, r.Makespan.Round(time.Millisecond))
}
