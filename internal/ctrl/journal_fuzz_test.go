package ctrl

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the journal parser and
// checks its safety invariants: it never panics, the clean-prefix length
// it reports stays inside the input and re-parses to the same entries
// with no error, and every recovered entry re-encodes onto the original
// bytes (nothing is ever invented).
func FuzzJournalDecode(f *testing.F) {
	valid, err := encodeJournalLine(Entry{Seq: 1, Op: "done", Block: 3, Name: "blk"})
	if err != nil {
		f.Fatal(err)
	}
	two := append(append([]byte(nil), valid...), valid...)
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // torn tail
	f.Add(two)
	f.Add(append(append([]byte(nil), valid...), "GARBAGE\n"...))
	f.Add([]byte("KJ1 00000000 {}\n"))
	f.Add([]byte("{\"seq\":0,\"op\":\"done\"}\n")) // unversioned
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, cleanLen, err := parseJournal(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corruption error from parser: %v", err)
			}
			return
		}
		if cleanLen < 0 || cleanLen > int64(len(data)) {
			t.Fatalf("cleanLen %d outside input of %d bytes", cleanLen, len(data))
		}
		// The clean prefix must be exactly the recovered entries, byte for
		// byte: parsing it again yields the same entries with no damage,
		// and re-encoding them reproduces it.
		again, againLen, err := parseJournal(data[:cleanLen])
		if err != nil || againLen != cleanLen || len(again) != len(entries) {
			t.Fatalf("clean prefix does not re-parse cleanly: %v (len %d vs %d, %d vs %d entries)",
				err, againLen, cleanLen, len(again), len(entries))
		}
		for i, e := range entries {
			if again[i] != e {
				t.Fatalf("entry %d changed on re-parse: %+v vs %+v", i, e, again[i])
			}
			// Every recovered entry survives an encode/decode round trip
			// (a payload may be non-canonical JSON, so byte equality is
			// not required — semantic equality is).
			line, err := encodeJournalLine(e)
			if err != nil {
				t.Fatalf("recovered entry does not re-encode: %v", err)
			}
			payload, err := decodeRecordLine(bytes.TrimSuffix(line, []byte{'\n'}))
			if err != nil {
				t.Fatalf("entry %d envelope round trip: %v", i, err)
			}
			var back Entry
			if err := json.Unmarshal(payload, &back); err != nil || back != e {
				t.Fatalf("entry %d round trip: %+v vs %+v (%v)", i, e, back, err)
			}
		}
	})
}
