package ctrl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/pipeline"
	"klotski/internal/sim"
	"klotski/internal/topo"
)

// Options parameterizes a control-loop run.
type Options struct {
	// Config supplies the planner and planning options used for the
	// initial plan and every replan.
	Config pipeline.Config

	// Plan, when non-nil, is the (audited) plan to execute. When nil, Run
	// plans from the world's executed prefix first.
	Plan *core.Plan

	// MaxRetries bounds transient-failure retries per action (default 4).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 10ms); subsequent
	// retries double it up to MaxBackoff (default 1s), with jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// MaxReplans bounds replanning across the whole run (default 8) so a
	// hostile environment cannot trap the controller in a plan loop.
	MaxReplans int

	// DriftThreshold enables drift-aware replanning: before each run the
	// controller observes demand telemetry (sim.World.ObserveDemands),
	// refits the forecast, and replans from the current boundary when the
	// relative L1 deviation between observed and planned-for demand
	// exceeds this threshold (e.g. 0.1 = 10% aggregate drift). Drift
	// replans share the MaxReplans budget and are always re-audited.
	// 0 disables the observation loop entirely.
	DriftThreshold float64

	// GapSkipThreshold enables certified-gap replan skipping on top of the
	// drift loop: when observed drift exceeds DriftThreshold, the
	// controller first asks whether a replan could actually help — the
	// remaining plan's cost is compared against the certified completion
	// lower bound of the drifted problem, and the plan is re-audited
	// against the drifted demands and live topology. If the cost is within
	// this relative gap of the bound and the audit passes, no replan can
	// improve cost by more than the gap and the plan is provably still
	// safe, so the replan (and its MaxReplans slot) is skipped. 0 disables
	// the check; it never fires in degraded mode (the envelope, not the
	// observation, is what the plan must track there).
	GapSkipThreshold float64

	// DemandMargin is the degraded-mode safety envelope: when telemetry is
	// unavailable or fails sanity checks even after the watchdog's
	// retries, the controller replans against the last good demand set
	// inflated by this factor instead of stalling or trusting garbage
	// (default 1.25).
	DemandMargin float64

	// ObserveRetries bounds the telemetry watchdog: how many times a
	// failed or insane observation is retried (with the same seeded
	// backoff as action retries) before the controller degrades
	// (default 2).
	ObserveRetries int

	// Journal, when non-nil, records begin/done/replan entries; pair with
	// OpenJournal + a fresh world to resume after a controller crash.
	Journal *Journal

	// Sleep is the backoff sleeper, injectable for tests and campaigns
	// (default time.Sleep).
	Sleep func(time.Duration)

	// Seed drives backoff jitter.
	Seed int64

	// Recorder, when non-nil, streams control-loop events (retries,
	// replans, boundary violations) into an observability registry. When
	// nil, the planner recorder from Config.Options.Recorder is used, so a
	// single recorder wired at the pipeline level covers the loop too.
	Recorder *obs.Recorder
}

// recorder resolves the effective recorder: the loop's own, or the
// planning options' as a fallback. Both may be nil (the no-op default).
func (o Options) recorder() *obs.Recorder {
	if o.Recorder != nil {
		return o.Recorder
	}
	return o.Config.Options.Recorder
}

func (o Options) withDefaults() Options {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.MaxReplans <= 0 {
		o.MaxReplans = 8
	}
	if o.DemandMargin <= 1 {
		o.DemandMargin = 1.25
	}
	if o.ObserveRetries <= 0 {
		o.ObserveRetries = 2
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Outcome reports what one control-loop run did.
type Outcome struct {
	Completed bool
	Executed  []int // blocks applied to the network, in order

	Retries int // transient failures retried
	Replans int // plans discarded for fresher ones

	// DriftReplans counts replans (included in Replans) triggered by
	// observed demand drift exceeding Options.DriftThreshold.
	DriftReplans int
	// GapSkips counts drift replans avoided because the remaining plan was
	// certified within Options.GapSkipThreshold of the drifted problem's
	// completion lower bound and re-audited safe against it.
	GapSkips int
	// TelemetryFaults counts demand observations that failed or were
	// rejected by sanity checks (including watchdog retries).
	TelemetryFaults int
	// DegradedRuns counts runs executed in degraded mode — planning
	// against the inflated-demand envelope because telemetry was unusable.
	DegradedRuns int

	// BoundaryViolations counts run-boundary states that violated
	// constraints on the live network — zero for a healthy run, since the
	// controller replans before executing into a drifted environment.
	BoundaryViolations int
	PeakUtil           float64 // worst boundary utilization observed
}

// Run drives the migration to completion against the live world:
//
//	plan → execute one block → observe → (retry | replan | continue)
//
// Before every action it polls the world; if the environment epoch moved
// (outage, flap, surge) the remaining plan is rebuilt from the executed
// prefix against the world's real topology and demands. Transient action
// failures are retried with capped exponential backoff and jitter. Every
// action is journaled before and after execution when a Journal is set.
func Run(ctx context.Context, task *migration.Task, world *sim.World, opts Options) (*Outcome, error) {
	opts = opts.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := opts.recorder()
	span := rec.Span("ctrl.run")
	defer span.End()
	out := &Outcome{}
	defer func() { out.Executed = world.Executed() }()

	// Crash recovery: fast-forward a fresh world through the journaled
	// committed prefix. (If the world already progressed — same-process
	// resume — the journal must agree with it.)
	if opts.Journal != nil {
		prefix := opts.Journal.CommittedPrefix()
		have := world.Executed()
		if len(have) > len(prefix) {
			return out, fmt.Errorf("ctrl: world has %d executed actions but journal committed only %d", len(have), len(prefix))
		}
		for i, id := range have {
			if prefix[i] != id {
				return out, fmt.Errorf("ctrl: journal/world divergence at action %d: journal %d, world %d", i, prefix[i], id)
			}
		}
		if len(prefix) > len(have) {
			world.Preapply(prefix[len(have):])
		}
	}

	lastEpoch := world.Poll()
	plan := opts.Plan
	if plan == nil {
		var err error
		plan, err = replanFromWorld(ctx, task, world, opts.Config, nil)
		if err != nil {
			return out, fmt.Errorf("ctrl: initial planning: %w", err)
		}
	}
	// Defense in depth: the control loop never executes a plan that has
	// not passed the independent audit, whoever produced it.
	if err := ensureAudited(plan, world.Executed(), opts.Config); err != nil {
		return out, err
	}

	remaining := append([]int(nil), plan.Sequence...)
	idx := 0
	replan := func(reason string, ov *demandOverride) error {
		if out.Replans >= opts.MaxReplans {
			return fmt.Errorf("ctrl: replan budget (%d) exhausted: %s", opts.MaxReplans, reason)
		}
		out.Replans++
		rec.Replan()
		if opts.Journal != nil {
			if err := opts.Journal.Append(Entry{Seq: len(world.Executed()), Op: "replan", Detail: reason}); err != nil {
				return err
			}
		}
		p, err := replanFromWorld(ctx, task, world, opts.Config, ov)
		if err != nil {
			return fmt.Errorf("ctrl: replanning (%s): %w", reason, err)
		}
		if err := ensureAudited(p, world.Executed(), opts.Config); err != nil {
			return err
		}
		remaining = append(remaining[:0], p.Sequence...)
		idx = 0
		lastEpoch = world.Epoch()
		return nil
	}

	// Drift state machine (NORMAL ⇄ DEGRADED), active when DriftThreshold
	// is set. "assumed" is the demand set the current plan was built
	// against, captured at horizon assumedAt, so the drift score compares
	// a fresh observation against what the plan expects *now*, not at t=0.
	driftOn := opts.DriftThreshold > 0
	degraded := false
	var lastGood, assumed demand.Set
	assumedAt := 0
	assumedF := opts.Config.Forecast
	var histories [][]float64
	var refit demand.Forecast
	haveRefit := false
	if driftOn {
		if assumedF.GrowthPerStep == 0 {
			assumedF = task.Forecast
		}
		lastGood = task.Demands.Clone()
		assumed = task.Demands.Clone()
		assumedAt = len(world.Executed())
		histories = make([][]float64, len(task.Demands.Demands))
		for i, d := range task.Demands.Demands {
			histories[i] = append(histories[i], d.Rate)
		}
	}
	observeDrift := func() error {
		// Telemetry watchdog: bounded retries sharing the seeded backoff
		// jitter stream, so campaign retry timing stays reproducible.
		var obsSet demand.Set
		good := false
		for attempt := 0; ; attempt++ {
			s, err := world.ObserveDemands()
			if err == nil && saneDemands(s, lastGood) {
				obsSet, good = s, true
				break
			}
			out.TelemetryFaults++
			rec.TelemetryFault()
			if attempt >= opts.ObserveRetries {
				break
			}
			opts.Sleep(backoff(opts.BaseBackoff, opts.MaxBackoff, attempt, rng))
		}
		if !good {
			if degraded {
				return nil // already planning against the envelope
			}
			// Degrade: plan the remainder against the last good demand
			// inflated by the safety margin — conservative progress beats
			// stalling or trusting garbage.
			degraded = true
			env := lastGood.Scaled(opts.DemandMargin)
			ov := &demandOverride{demands: &env}
			if haveRefit {
				ov.forecast = &refit
			}
			if err := replan("telemetry unusable; degrading to demand envelope", ov); err != nil {
				// Budget exhausted or envelope infeasible: the audited
				// current plan is the safest known course — keep executing
				// it (still counted as degraded) rather than aborting the
				// migration because the observation channel died.
				return nil
			}
			assumed = env.Clone()
			assumedAt = len(world.Executed())
			return nil
		}
		degraded = false
		lastGood = obsSet.Clone()
		for i := range histories {
			if i < len(obsSet.Demands) {
				histories[i] = append(histories[i], obsSet.Demands[i].Rate)
			}
		}
		if fitted, f, err := demand.FitSetForecast(obsSet, histories); err == nil {
			obsSet = fitted
			refit = f
			haveRefit = true
		}
		score := driftScore(obsSet, assumed, assumedF.ScaleAt(len(world.Executed())-assumedAt))
		if score <= opts.DriftThreshold {
			return nil
		}
		if opts.GapSkipThreshold > 0 {
			var rf *demand.Forecast
			if haveRefit {
				rf = &refit
			}
			if gapSkipCheck(task, world, opts.Config, opts.GapSkipThreshold, remaining[idx:], obsSet, rf) {
				out.GapSkips++
				rec.GapSkip()
				// The plan was certified against the observation; make it
				// the new drift reference so the same drift does not re-run
				// the certificate at every boundary.
				if haveRefit {
					assumedF = refit
				}
				assumed = obsSet.Clone()
				assumedAt = len(world.Executed())
				return nil
			}
		}
		ov := &demandOverride{demands: &obsSet}
		if haveRefit {
			ov.forecast = &refit
		}
		if err := replan(fmt.Sprintf("demand drift %.3f exceeds threshold %.3f", score, opts.DriftThreshold), ov); err != nil {
			return err
		}
		out.DriftReplans++
		rec.DriftReplan()
		if haveRefit {
			assumedF = refit
		}
		assumed = obsSet.Clone()
		assumedAt = len(world.Executed())
		return nil
	}
	if driftOn {
		if err := observeDrift(); err != nil {
			return out, err
		}
	}

	for idx < len(remaining) {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("ctrl: cancelled after %d actions: %w", len(world.Executed()), err)
		}
		// Observe the environment before committing to the next action.
		if epoch := world.Poll(); epoch != lastEpoch {
			if err := replan(fmt.Sprintf("environment epoch %d → %d", lastEpoch, epoch), nil); err != nil {
				return out, err
			}
			continue
		}

		block := remaining[idx]
		seq := len(world.Executed())
		if opts.Journal != nil {
			if err := opts.Journal.Append(Entry{Seq: seq, Op: "begin", Block: block, Name: task.Blocks[block].Name}); err != nil {
				return out, err
			}
		}
		attempt := 0
		for {
			err := world.Apply(block)
			if err == nil {
				break
			}
			if !errors.Is(err, sim.ErrTransient) {
				return out, fmt.Errorf("ctrl: applying block %q: %w", task.Blocks[block].Name, err)
			}
			if attempt >= opts.MaxRetries {
				// Retries exhausted. One replan attempt is cheaper than
				// abandoning a half-executed migration; if the world truly
				// has not changed the fresh plan fails the same way and
				// the replan budget bounds the loop.
				if rerr := replan(fmt.Sprintf("block %d failed %d attempts: %v", block, attempt+1, err), nil); rerr != nil {
					return out, fmt.Errorf("ctrl: block %q failed persistently: %w (replanning out also failed: %v)", task.Blocks[block].Name, err, rerr)
				}
				attempt = -1 // falls through to the outer loop via break below
				break
			}
			out.Retries++
			rec.Retry()
			opts.Sleep(backoff(opts.BaseBackoff, opts.MaxBackoff, attempt, rng))
			attempt++
		}
		if attempt < 0 {
			continue // replanned out of a persistent failure
		}
		if opts.Journal != nil {
			if err := opts.Journal.Append(Entry{Seq: seq, Op: "done", Block: block, Name: task.Blocks[block].Name, Attempt: attempt}); err != nil {
				return out, err
			}
		}
		idx++

		// Boundary observation: the state after the last block of a run —
		// type change ahead, or plan complete — is what the planner
		// guaranteed safe; verify it against the live network.
		runEnds := idx == len(remaining) || task.Blocks[remaining[idx]].Type != task.Blocks[block].Type
		if runEnds {
			util, ok := world.Observe(opts.Config.Options.Theta, opts.Config.Options.Split)
			if util > out.PeakUtil {
				out.PeakUtil = util
			}
			if !ok {
				out.BoundaryViolations++
				rec.BoundaryViolation()
			}
			if degraded {
				out.DegradedRuns++
				rec.DegradedRun()
			}
			// Drift check before committing to the next run; the final
			// boundary has no next run to replan for.
			if driftOn && idx < len(remaining) {
				if err := observeDrift(); err != nil {
					return out, err
				}
			}
		}
	}

	out.Completed = len(world.Executed()) == task.NumActions()
	if !out.Completed {
		return out, fmt.Errorf("ctrl: run ended with %d of %d actions executed", len(world.Executed()), task.NumActions())
	}
	return out, nil
}

// ensureAudited refuses to hand a plan to the executor unless it carries a
// passing independent-audit report. Plans from the core planners arrive
// pre-audited (their post-pass sets Plan.Audit); plans built elsewhere —
// baselines, hand-constructed Options.Plan — are audited here against the
// task the plan was computed for, continuing the executed prefix. When
// Config.SkipAudit is set (tests only), the audit still runs here: the
// executor's gate is the last line of defense and has no opt-out.
func ensureAudited(p *core.Plan, executed []int, cfg pipeline.Config) error {
	if p.Audit == nil {
		freeOrder := cfg.Planner == pipeline.PlannerMRC || cfg.Planner == pipeline.PlannerJanus
		opts := cfg.Options
		opts.InitialCounts = nil
		opts.InitialLast = core.NoLast
		rep, err := core.AuditResumed(p.Task, p.Sequence, executed, opts, freeOrder)
		if err != nil {
			return fmt.Errorf("ctrl: auditing plan: %w", err)
		}
		p.Audit = rep
	}
	if !p.Audit.Passed {
		return fmt.Errorf("ctrl: refusing to execute plan: audit failed at step %d: %s",
			p.Audit.FailStep, p.Audit.Reason)
	}
	return nil
}

// gapSkipCheck reports whether the remaining plan may keep executing
// despite demand drift beyond the replan threshold: a replan is only
// worth its cost (and its MaxReplans slot) if it could produce a
// meaningfully better plan, and it provably cannot when the remaining
// sequence's cost is already within GapSkipThreshold of the drifted
// problem's certified completion lower bound. Cost alone is not enough —
// the plan must also still be SAFE under the drifted demands — so the
// remaining sequence is re-audited against the drifted task (observed
// demands, refit forecast, live outages) on a pristine evaluator before
// the skip is granted.
func gapSkipCheck(task *migration.Task, world *sim.World, cfg pipeline.Config, thr float64, remaining []int, obsSet demand.Set, refit *demand.Forecast) bool {
	executed := world.Executed()
	opts := cfg.Options
	// Incumbent: the remaining plan's cost, conservatively restarting the
	// run structure at the boundary (NoLast can only overestimate, keeping
	// the certificate sound).
	inc := core.SequenceCostCapped(task, remaining, opts.Alpha, core.NoLast, opts.MaxRunLength, 0)
	counts := make([]int, task.NumTypes())
	last := core.NoLast
	for _, id := range executed {
		counts[task.Blocks[id].Type]++
	}
	if len(executed) > 0 {
		last = task.Blocks[executed[len(executed)-1]].Type
	}
	planTask := withOutages(task, world.DownSwitches(), world.DownCircuits()).WithDemands(obsSet.Clone())
	if refit != nil {
		planTask = planTask.WithForecast(*refit)
	}
	lb := core.CompletionLowerBound(planTask, counts, last, opts.Alpha, opts.MaxRunLength)
	if lb <= 0 || inc > (1+thr)*lb {
		return false
	}
	auditOpts := opts
	auditOpts.InitialCounts = nil
	auditOpts.InitialLast = core.NoLast
	rep, err := core.AuditResumed(planTask, remaining, executed, auditOpts, false)
	return err == nil && rep.Passed
}

// demandOverride redirects a replan away from the world's ground-truth
// demand channel: drift replans plan on the (sanity-checked) telemetry
// sample with the refit forecast, and degraded-mode replans plan on the
// inflated envelope — never reading world.Demands() while telemetry is
// suspect.
type demandOverride struct {
	demands  *demand.Set
	forecast *demand.Forecast
}

// replanFromWorld rebuilds the remaining plan from the world's ground
// truth: executed prefix, out-of-band outages, flapped circuits, and the
// current (possibly surged) demand level — unless ov supplies the demand
// view to plan against.
func replanFromWorld(ctx context.Context, task *migration.Task, world *sim.World, cfg pipeline.Config, ov *demandOverride) (*core.Plan, error) {
	executed := world.Executed()
	downSw := world.DownSwitches()
	downCk := world.DownCircuits()
	if ov != nil {
		if ov.forecast != nil {
			cfg.Forecast = *ov.forecast
		}
		if ov.demands != nil {
			planTask := withOutages(task, downSw, downCk)
			if ov.forecast != nil {
				planTask = planTask.WithForecast(*ov.forecast)
			}
			ds := ov.demands.Clone()
			return pipeline.ReplanContext(ctx, planTask, executed, &ds, cfg)
		}
	}
	switch {
	case world.DemandsChanged() || len(downCk) > 0:
		// General drift: rebuild the task against the observed topology
		// and demand level.
		planTask := withOutages(task, downSw, downCk)
		ds := world.Demands()
		return pipeline.ReplanContext(ctx, planTask, executed, &ds, cfg)
	case len(downSw) > 0:
		return pipeline.ReplanAfterOutageContext(ctx, task, executed, downSw, cfg)
	default:
		return pipeline.ReplanContext(ctx, task, executed, nil, cfg)
	}
}

// withOutages clones the task against a topology with the given switches
// and circuits administratively down; a no-op when both lists are empty.
func withOutages(task *migration.Task, downSw []topo.SwitchID, downCk []topo.CircuitID) *migration.Task {
	if len(downSw)+len(downCk) == 0 {
		return task
	}
	t := task.Topo.Clone()
	for _, s := range downSw {
		t.SetSwitchActive(s, false)
	}
	for _, c := range downCk {
		t.SetCircuitActive(c, false)
	}
	return task.WithTopology(t)
}

// saneDemands rejects telemetry samples no plausible network produces:
// wrong cardinality, non-positive / NaN / infinite rates, or an aggregate
// rate two orders of magnitude above the last good sample (no organic
// shift multiplies total demand a hundredfold between two run boundaries).
func saneDemands(obs, ref demand.Set) bool {
	if len(obs.Demands) != len(ref.Demands) {
		return false
	}
	var obsTotal, refTotal float64
	for i := range obs.Demands {
		r := obs.Demands[i].Rate
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return false
		}
		obsTotal += r
		refTotal += ref.Demands[i].Rate
	}
	return refTotal <= 0 || obsTotal <= 100*refTotal
}

// driftScore is the relative L1 deviation between an observed demand set
// and the plan's assumption grown to the current horizon:
// Σ|obs−expected| / Σexpected. 0 means telemetry matches the plan exactly.
func driftScore(obs, assumed demand.Set, scale float64) float64 {
	var num, den float64
	for i := range assumed.Demands {
		exp := assumed.Demands[i].Rate * scale
		var o float64
		if i < len(obs.Demands) {
			o = obs.Demands[i].Rate
		}
		num += math.Abs(o - exp)
		den += exp
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// Backoff computes the capped exponential delay for a retry attempt with
// full jitter in [d/2, d): herds of retrying controllers must not
// synchronize against a recovering device. Exported so the serve layer's
// job runners retry transient failures under the same policy the control
// loop uses.
func Backoff(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	return backoff(base, max, attempt, rng)
}

// backoff computes the capped exponential delay for a retry attempt with
// full jitter in [d/2, d): herds of retrying controllers must not
// synchronize against a recovering device.
func backoff(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
