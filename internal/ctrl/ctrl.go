package ctrl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"klotski/internal/core"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/pipeline"
	"klotski/internal/sim"
)

// Options parameterizes a control-loop run.
type Options struct {
	// Config supplies the planner and planning options used for the
	// initial plan and every replan.
	Config pipeline.Config

	// Plan, when non-nil, is the (audited) plan to execute. When nil, Run
	// plans from the world's executed prefix first.
	Plan *core.Plan

	// MaxRetries bounds transient-failure retries per action (default 4).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 10ms); subsequent
	// retries double it up to MaxBackoff (default 1s), with jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// MaxReplans bounds replanning across the whole run (default 8) so a
	// hostile environment cannot trap the controller in a plan loop.
	MaxReplans int

	// Journal, when non-nil, records begin/done/replan entries; pair with
	// OpenJournal + a fresh world to resume after a controller crash.
	Journal *Journal

	// Sleep is the backoff sleeper, injectable for tests and campaigns
	// (default time.Sleep).
	Sleep func(time.Duration)

	// Seed drives backoff jitter.
	Seed int64

	// Recorder, when non-nil, streams control-loop events (retries,
	// replans, boundary violations) into an observability registry. When
	// nil, the planner recorder from Config.Options.Recorder is used, so a
	// single recorder wired at the pipeline level covers the loop too.
	Recorder *obs.Recorder
}

// recorder resolves the effective recorder: the loop's own, or the
// planning options' as a fallback. Both may be nil (the no-op default).
func (o Options) recorder() *obs.Recorder {
	if o.Recorder != nil {
		return o.Recorder
	}
	return o.Config.Options.Recorder
}

func (o Options) withDefaults() Options {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.MaxReplans <= 0 {
		o.MaxReplans = 8
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Outcome reports what one control-loop run did.
type Outcome struct {
	Completed bool
	Executed  []int // blocks applied to the network, in order

	Retries int // transient failures retried
	Replans int // plans discarded for fresher ones

	// BoundaryViolations counts run-boundary states that violated
	// constraints on the live network — zero for a healthy run, since the
	// controller replans before executing into a drifted environment.
	BoundaryViolations int
	PeakUtil           float64 // worst boundary utilization observed
}

// Run drives the migration to completion against the live world:
//
//	plan → execute one block → observe → (retry | replan | continue)
//
// Before every action it polls the world; if the environment epoch moved
// (outage, flap, surge) the remaining plan is rebuilt from the executed
// prefix against the world's real topology and demands. Transient action
// failures are retried with capped exponential backoff and jitter. Every
// action is journaled before and after execution when a Journal is set.
func Run(ctx context.Context, task *migration.Task, world *sim.World, opts Options) (*Outcome, error) {
	opts = opts.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := opts.recorder()
	span := rec.Span("ctrl.run")
	defer span.End()
	out := &Outcome{}
	defer func() { out.Executed = world.Executed() }()

	// Crash recovery: fast-forward a fresh world through the journaled
	// committed prefix. (If the world already progressed — same-process
	// resume — the journal must agree with it.)
	if opts.Journal != nil {
		prefix := opts.Journal.CommittedPrefix()
		have := world.Executed()
		if len(have) > len(prefix) {
			return out, fmt.Errorf("ctrl: world has %d executed actions but journal committed only %d", len(have), len(prefix))
		}
		for i, id := range have {
			if prefix[i] != id {
				return out, fmt.Errorf("ctrl: journal/world divergence at action %d: journal %d, world %d", i, prefix[i], id)
			}
		}
		if len(prefix) > len(have) {
			world.Preapply(prefix[len(have):])
		}
	}

	lastEpoch := world.Poll()
	plan := opts.Plan
	if plan == nil {
		var err error
		plan, err = replanFromWorld(ctx, task, world, opts.Config)
		if err != nil {
			return out, fmt.Errorf("ctrl: initial planning: %w", err)
		}
	}
	// Defense in depth: the control loop never executes a plan that has
	// not passed the independent audit, whoever produced it.
	if err := ensureAudited(plan, world.Executed(), opts.Config); err != nil {
		return out, err
	}

	remaining := append([]int(nil), plan.Sequence...)
	idx := 0
	replan := func(reason string) error {
		if out.Replans >= opts.MaxReplans {
			return fmt.Errorf("ctrl: replan budget (%d) exhausted: %s", opts.MaxReplans, reason)
		}
		out.Replans++
		rec.Replan()
		if opts.Journal != nil {
			if err := opts.Journal.Append(Entry{Seq: len(world.Executed()), Op: "replan", Detail: reason}); err != nil {
				return err
			}
		}
		p, err := replanFromWorld(ctx, task, world, opts.Config)
		if err != nil {
			return fmt.Errorf("ctrl: replanning (%s): %w", reason, err)
		}
		if err := ensureAudited(p, world.Executed(), opts.Config); err != nil {
			return err
		}
		remaining = append(remaining[:0], p.Sequence...)
		idx = 0
		lastEpoch = world.Epoch()
		return nil
	}

	for idx < len(remaining) {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("ctrl: cancelled after %d actions: %w", len(world.Executed()), err)
		}
		// Observe the environment before committing to the next action.
		if epoch := world.Poll(); epoch != lastEpoch {
			if err := replan(fmt.Sprintf("environment epoch %d → %d", lastEpoch, epoch)); err != nil {
				return out, err
			}
			continue
		}

		block := remaining[idx]
		seq := len(world.Executed())
		if opts.Journal != nil {
			if err := opts.Journal.Append(Entry{Seq: seq, Op: "begin", Block: block, Name: task.Blocks[block].Name}); err != nil {
				return out, err
			}
		}
		attempt := 0
		for {
			err := world.Apply(block)
			if err == nil {
				break
			}
			if !errors.Is(err, sim.ErrTransient) {
				return out, fmt.Errorf("ctrl: applying block %q: %w", task.Blocks[block].Name, err)
			}
			if attempt >= opts.MaxRetries {
				// Retries exhausted. One replan attempt is cheaper than
				// abandoning a half-executed migration; if the world truly
				// has not changed the fresh plan fails the same way and
				// the replan budget bounds the loop.
				if rerr := replan(fmt.Sprintf("block %d failed %d attempts: %v", block, attempt+1, err)); rerr != nil {
					return out, fmt.Errorf("ctrl: block %q failed persistently: %w (replanning out also failed: %v)", task.Blocks[block].Name, err, rerr)
				}
				attempt = -1 // falls through to the outer loop via break below
				break
			}
			out.Retries++
			rec.Retry()
			opts.Sleep(backoff(opts.BaseBackoff, opts.MaxBackoff, attempt, rng))
			attempt++
		}
		if attempt < 0 {
			continue // replanned out of a persistent failure
		}
		if opts.Journal != nil {
			if err := opts.Journal.Append(Entry{Seq: seq, Op: "done", Block: block, Name: task.Blocks[block].Name, Attempt: attempt}); err != nil {
				return out, err
			}
		}
		idx++

		// Boundary observation: the state after the last block of a run —
		// type change ahead, or plan complete — is what the planner
		// guaranteed safe; verify it against the live network.
		runEnds := idx == len(remaining) || task.Blocks[remaining[idx]].Type != task.Blocks[block].Type
		if runEnds {
			util, ok := world.Observe(opts.Config.Options.Theta, opts.Config.Options.Split)
			if util > out.PeakUtil {
				out.PeakUtil = util
			}
			if !ok {
				out.BoundaryViolations++
				rec.BoundaryViolation()
			}
		}
	}

	out.Completed = len(world.Executed()) == task.NumActions()
	if !out.Completed {
		return out, fmt.Errorf("ctrl: run ended with %d of %d actions executed", len(world.Executed()), task.NumActions())
	}
	return out, nil
}

// ensureAudited refuses to hand a plan to the executor unless it carries a
// passing independent-audit report. Plans from the core planners arrive
// pre-audited (their post-pass sets Plan.Audit); plans built elsewhere —
// baselines, hand-constructed Options.Plan — are audited here against the
// task the plan was computed for, continuing the executed prefix. When
// Config.SkipAudit is set (tests only), the audit still runs here: the
// executor's gate is the last line of defense and has no opt-out.
func ensureAudited(p *core.Plan, executed []int, cfg pipeline.Config) error {
	if p.Audit == nil {
		freeOrder := cfg.Planner == pipeline.PlannerMRC || cfg.Planner == pipeline.PlannerJanus
		opts := cfg.Options
		opts.InitialCounts = nil
		opts.InitialLast = core.NoLast
		rep, err := core.AuditResumed(p.Task, p.Sequence, executed, opts, freeOrder)
		if err != nil {
			return fmt.Errorf("ctrl: auditing plan: %w", err)
		}
		p.Audit = rep
	}
	if !p.Audit.Passed {
		return fmt.Errorf("ctrl: refusing to execute plan: audit failed at step %d: %s",
			p.Audit.FailStep, p.Audit.Reason)
	}
	return nil
}

// replanFromWorld rebuilds the remaining plan from the world's ground
// truth: executed prefix, out-of-band outages, flapped circuits, and the
// current (possibly surged) demand level.
func replanFromWorld(ctx context.Context, task *migration.Task, world *sim.World, cfg pipeline.Config) (*core.Plan, error) {
	executed := world.Executed()
	downSw := world.DownSwitches()
	downCk := world.DownCircuits()
	switch {
	case world.DemandsChanged() || len(downCk) > 0:
		// General drift: rebuild the task against the observed topology
		// and demand level.
		planTask := task
		if len(downSw)+len(downCk) > 0 {
			t := task.Topo.Clone()
			for _, s := range downSw {
				t.SetSwitchActive(s, false)
			}
			for _, c := range downCk {
				t.SetCircuitActive(c, false)
			}
			planTask = task.WithTopology(t)
		}
		ds := world.Demands()
		return pipeline.ReplanContext(ctx, planTask, executed, &ds, cfg)
	case len(downSw) > 0:
		return pipeline.ReplanAfterOutageContext(ctx, task, executed, downSw, cfg)
	default:
		return pipeline.ReplanContext(ctx, task, executed, nil, cfg)
	}
}

// backoff computes the capped exponential delay for a retry attempt with
// full jitter in [d/2, d): herds of retrying controllers must not
// synchronize against a recovering device.
func backoff(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
