package ctrl

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/pipeline"
	"klotski/internal/sim"
	"klotski/internal/topo"
)

// loopTask builds the spare-rich bridge microcosm: 3 old bridges to
// drain, 3 new to undrain, 2 spares the migration never touches, one
// ECMP demand of 120 over 100-capacity bridges. Safe states need ≥2 up
// bridges, so losing one spare (or a modest surge) keeps the migration
// feasible but changes which orderings are safe — 2-up states run at
// 0.60, leaving headroom for the surges a chaos campaign throws at them.
func loopTask(t testing.TB) (*migration.Task, []topo.SwitchID) {
	t.Helper()
	tp := topo.New("loop-bridges")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	task := &migration.Task{Name: "loop-bridges", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})
	for i := 0; i < 3; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, 100)
		tp.AddCircuit(s, dst, 100)
		task.AddBlock(migration.Block{Name: "drain-old" + string(rune('a'+i)), Type: d, Switches: []topo.SwitchID{s}})
	}
	for i := 0; i < 3; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 2})
		tp.SetSwitchActive(s, false)
		tp.AddCircuit(src, s, 100)
		tp.AddCircuit(s, dst, 100)
		task.AddBlock(migration.Block{Name: "undrain-new" + string(rune('a'+i)), Type: u, Switches: []topo.SwitchID{s}})
	}
	var spares []topo.SwitchID
	for i := 0; i < 2; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "spare" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, 100)
		tp.AddCircuit(s, dst, 100)
		spares = append(spares, s)
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: 120})
	return task, spares
}

func noSleep(time.Duration) {}

// TestRunCleanWorldExecutesPlanExactly: with no faults the controller is
// a plain executor — no retries, no replans, no violations, done.
func TestRunCleanWorldExecutesPlanExactly(t *testing.T) {
	task, _ := loopTask(t)
	world := sim.NewWorld(task, nil, 1)
	out, err := Run(context.Background(), task, world, Options{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("clean run should complete")
	}
	if out.Retries != 0 || out.Replans != 0 || out.BoundaryViolations != 0 {
		t.Fatalf("clean run should be quiet: retries=%d replans=%d violations=%d",
			out.Retries, out.Replans, out.BoundaryViolations)
	}
	if len(out.Executed) != task.NumActions() {
		t.Fatalf("executed %d of %d actions", len(out.Executed), task.NumActions())
	}
	if err := core.ValidateSequence(task, out.Executed, nil); err != nil {
		t.Fatalf("executed order invalid: %v", err)
	}
}

// TestRunChaosThreeFaults is the acceptance test for the chaos-hardened
// loop: a transient drain failure (absorbed by retries), a spare-switch
// outage (absorbed by an outage replan), and a demand surge (absorbed by
// a demand replan) — the migration must still complete with zero boundary
// violations on the live network.
func TestRunChaosThreeFaults(t *testing.T) {
	task, spares := loopTask(t)
	schedule := sim.Schedule{
		{Step: 1, Kind: sim.FaultTransient, Attempts: 2},
		{Step: 2, Kind: sim.FaultSwitchDown, Switch: spares[0]},
		{Step: 4, Kind: sim.FaultSurge, Surge: &demand.Surge{Fraction: 1, Multiplier: 1.1}},
	}
	world := sim.NewWorld(task, schedule, 7)
	out, err := Run(context.Background(), task, world, Options{Sleep: noSleep, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("chaos run should complete")
	}
	if out.Retries < 2 {
		t.Errorf("transient fault with 2 attempts should cost ≥2 retries, got %d", out.Retries)
	}
	if out.Replans < 2 {
		t.Errorf("outage + surge should force ≥2 replans, got %d", out.Replans)
	}
	if out.BoundaryViolations != 0 {
		t.Fatalf("controller let %d unsafe boundary states onto the live network", out.BoundaryViolations)
	}
	if len(out.Executed) != task.NumActions() {
		t.Fatalf("executed %d of %d actions", len(out.Executed), task.NumActions())
	}
	if err := core.ValidateSequence(task, out.Executed, nil); err != nil {
		t.Fatalf("executed order invalid: %v", err)
	}
}

// TestRunJournalCrashResume: a controller "crash" mid-migration (context
// cancelled during a retry backoff) must leave a journal from which a
// fresh controller — and a fresh world fast-forwarded through the
// committed prefix — finishes the migration.
func TestRunJournalCrashResume(t *testing.T) {
	task, _ := loopTask(t)
	schedule := sim.Schedule{{Step: 3, Kind: sim.FaultTransient, Attempts: 1}}
	path := filepath.Join(t.TempDir(), "journal.wal")

	j1, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	world1 := sim.NewWorld(task, schedule, 3)
	// The crash: the first retry backoff cancels the context, so the
	// controller dies between actions.
	out1, err := Run(ctx, task, world1, Options{
		Journal: j1,
		Sleep:   func(time.Duration) { cancel() },
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation mid-run, got %v", err)
	}
	if out1.Completed {
		t.Fatal("crashed run must not report completion")
	}
	j1.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	committed := j2.CommittedPrefix()
	if len(committed) == 0 || len(committed) >= task.NumActions() {
		t.Fatalf("crash should leave a partial committed prefix, got %d of %d",
			len(committed), task.NumActions())
	}

	// Fresh world, same fault schedule — the journal fast-forwards it.
	world2 := sim.NewWorld(task, schedule, 3)
	out2, err := Run(context.Background(), task, world2, Options{Journal: j2, Sleep: noSleep})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !out2.Completed {
		t.Fatal("resumed run should complete")
	}
	if out2.BoundaryViolations != 0 {
		t.Fatalf("resumed run had %d boundary violations", out2.BoundaryViolations)
	}
	if len(out2.Executed) != task.NumActions() {
		t.Fatalf("resumed run executed %d of %d actions", len(out2.Executed), task.NumActions())
	}
	if err := core.ValidateSequence(task, out2.Executed, nil); err != nil {
		t.Fatalf("final executed order invalid: %v", err)
	}
}

// TestRunPersistentFailureExhaustsBudgets: a block that fails more often
// than retries and replans can absorb must surface an error mentioning
// the transient cause, not loop forever.
func TestRunPersistentFailureExhaustsBudgets(t *testing.T) {
	task, _ := loopTask(t)
	schedule := sim.Schedule{{Step: 0, Kind: sim.FaultTransient, Attempts: 1000}}
	world := sim.NewWorld(task, schedule, 1)
	out, err := Run(context.Background(), task, world, Options{
		Sleep:      noSleep,
		MaxRetries: 2,
		MaxReplans: 2,
	})
	if err == nil {
		t.Fatal("persistently failing block should error out")
	}
	if !errors.Is(err, sim.ErrTransient) {
		t.Fatalf("error should wrap the transient cause, got %v", err)
	}
	if out.Completed {
		t.Fatal("failed run must not report completion")
	}
}

// TestCampaignChaos: a Monte Carlo chaos campaign over random ≥3-fault
// schedules — every run must hold the zero-boundary-violation invariant,
// and on this spare-rich topology the loop should carry most runs home.
func TestCampaignChaos(t *testing.T) {
	task, _ := loopTask(t)
	rep, err := Campaign(context.Background(), task, CampaignOptions{
		Seeds:    8,
		Seed:     100,
		Schedule: sim.ScheduleOptions{Faults: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundaryViolations != 0 {
		t.Fatalf("campaign observed %d boundary violations", rep.BoundaryViolations)
	}
	if rep.CompletionRate < 0.5 {
		t.Fatalf("completion rate %.2f suspiciously low; failed seeds %v",
			rep.CompletionRate, rep.FailedSeeds)
	}
	if rep.TotalRetries+rep.TotalReplans == 0 {
		t.Error("3-fault schedules should force some retries or replans")
	}
	if rep.Completed+len(rep.FailedSeeds) != rep.Seeds {
		t.Errorf("accounting mismatch: %d completed + %d failed != %d seeds",
			rep.Completed, len(rep.FailedSeeds), rep.Seeds)
	}
}

// TestJournalTolleratesTruncatedTail: a crash mid-append leaves a partial
// final line; reading must drop it and keep every complete entry.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Entry{Seq: i, Op: "begin", Block: i}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Entry{Seq: i, Op: "done", Block: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"beg`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	if len(entries) != 6 {
		t.Fatalf("want 6 intact entries, got %d", len(entries))
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.CommittedPrefix(); len(got) != 3 {
		t.Fatalf("committed prefix = %v, want 3 blocks", got)
	}
}

// TestJournalRejectsMidFileCorruption: garbage anywhere but the tail is
// real corruption and must fail loudly.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	content := `{"seq":0,"op":"done","block":1}` + "\n" + "GARBAGE\n" + `{"seq":1,"op":"done","block":2}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("mid-file corruption should be an error")
	}
}

// TestRunRefusesTamperedPlan: the control loop's audit gate is the last
// line of defense — a plan whose sequence was altered after planning (and
// whose audit report was stripped) must be refused before any action is
// issued to the network.
func TestRunRefusesTamperedPlan(t *testing.T) {
	task, _ := loopTask(t)
	res, err := pipeline.RunTask(task, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tampered := *res.Plan
	tampered.Audit = nil
	tampered.Sequence = append([]int(nil), res.Plan.Sequence...)
	swapped := false
	for i := 0; i+1 < len(tampered.Sequence) && !swapped; i++ {
		a, b := tampered.Sequence[i], tampered.Sequence[i+1]
		if task.Blocks[a].Type == task.Blocks[b].Type {
			tampered.Sequence[i], tampered.Sequence[i+1] = b, a
			swapped = true
		}
	}
	if !swapped {
		t.Fatal("no same-type pair to tamper with")
	}
	world := sim.NewWorld(task, nil, 1)
	_, err = Run(context.Background(), task, world, Options{Plan: &tampered, Sleep: noSleep})
	if err == nil {
		t.Fatal("controller executed a tampered plan")
	}
	if len(world.Executed()) != 0 {
		t.Fatalf("controller applied %d actions of a tampered plan", len(world.Executed()))
	}
	if !strings.Contains(err.Error(), "audit failed") {
		t.Fatalf("refusal should cite the audit: %v", err)
	}
}

// TestRunWithPrebuiltPlan: a plan audited by the pipeline can be handed
// to the controller and executes unchanged on a clean world.
func TestRunWithPrebuiltPlan(t *testing.T) {
	task, _ := loopTask(t)
	res, err := pipeline.RunTask(task, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	world := sim.NewWorld(task, nil, 1)
	out, err := Run(context.Background(), task, world, Options{Plan: res.Plan, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed || out.Replans != 0 {
		t.Fatalf("prebuilt plan on clean world: completed=%v replans=%d", out.Completed, out.Replans)
	}
}
