package ctrl

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"klotski/internal/sim"
)

// The control loop's value during an incident depends on replayability: a
// failed chaos run must reproduce exactly from its seed and fault
// schedule. These tests pin that contract — all randomness flows from
// explicit seeds (schedule draw, world transients, backoff jitter), no
// wall-clock or map-iteration order leaks into behavior — by requiring
// two identical runs to emit byte-identical journals.

// runJournaled executes the task under the given seed's fault schedule,
// journaling to dir/name. It returns the outcome, the run error (a fault
// train may legitimately make the migration infeasible — a deterministic
// failure is still deterministic), and the raw journal bytes.
func runJournaled(t *testing.T, dir, name string, seed int64) (*Outcome, error, []byte) {
	t.Helper()
	task, _ := loopTask(t)
	schedule := sim.RandomSchedule(task, seed, sim.ScheduleOptions{Faults: 4})
	world := sim.NewWorld(task, schedule, seed)
	path := filepath.Join(dir, name)
	// Determinism runs re-execute into the same path on purpose; the
	// explicit overwrite bypasses NewJournal's clobber refusal.
	j, err := NewJournalOverwrite(path)
	if err != nil {
		t.Fatal(err)
	}
	out, runErr := Run(context.Background(), task, world, Options{
		Journal: j,
		Sleep:   noSleep,
		Seed:    seed,
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return out, runErr, raw
}

// errString folds a nil error and an empty message together for
// comparison.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestRunDeterministicJournals(t *testing.T) {
	dir := t.TempDir()
	completed := 0
	for _, seed := range []int64{1, 7, 42} {
		out1, err1, raw1 := runJournaled(t, dir, "first.jsonl", seed)
		out2, err2, raw2 := runJournaled(t, dir, "second.jsonl", seed)
		if !bytes.Equal(raw1, raw2) {
			t.Errorf("seed %d: journals differ across identical runs:\nfirst:\n%s\nsecond:\n%s",
				seed, raw1, raw2)
		}
		if errString(err1) != errString(err2) {
			t.Errorf("seed %d: errors differ: %v vs %v", seed, err1, err2)
		}
		if !reflect.DeepEqual(out1, out2) {
			t.Errorf("seed %d: outcomes differ: %+v vs %+v", seed, out1, out2)
		}
		if len(raw1) == 0 {
			t.Errorf("seed %d: journal empty — run was not journaled", seed)
		}
		if err1 == nil && out1.Completed {
			completed++
		}
	}
	if completed == 0 {
		t.Error("no seed completed; determinism was only exercised on failure paths")
	}
}

// TestRunDifferentSeedsDiverge guards against the trivial way the test
// above could pass: the journal ignoring the fault train entirely. At
// least one pair of seeds must produce different journals.
func TestRunDifferentSeedsDiverge(t *testing.T) {
	dir := t.TempDir()
	journals := make(map[string]bool)
	for _, seed := range []int64{1, 7, 42, 99} {
		_, _, raw := runJournaled(t, dir, "run.jsonl", seed)
		journals[string(raw)] = true
	}
	if len(journals) < 2 {
		t.Error("all seeds produced identical journals; fault schedules are not reaching the controller")
	}
}

// TestCampaignDeterministic extends the contract to aggregate campaigns:
// the same base seed must reproduce the same report, including which
// seeds failed and which run was worst.
func TestCampaignDeterministic(t *testing.T) {
	task, _ := loopTask(t)
	opts := CampaignOptions{
		Seeds:    6,
		Seed:     100,
		Schedule: sim.ScheduleOptions{Faults: 4},
	}
	rep1, err := Campaign(context.Background(), task, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Campaign(context.Background(), task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("campaign reports differ across identical runs:\n%+v\n%+v", rep1, rep2)
	}
}
