package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond returns a 4-switch diamond: rsw—fsw1—ssw, rsw—fsw2—ssw.
func buildDiamond(t *testing.T) (*Topology, []SwitchID, []CircuitID) {
	t.Helper()
	tp := New("diamond")
	rsw := tp.AddSwitch(Switch{Name: "rsw", Role: RoleRSW})
	f1 := tp.AddSwitch(Switch{Name: "fsw1", Role: RoleFSW})
	f2 := tp.AddSwitch(Switch{Name: "fsw2", Role: RoleFSW})
	ssw := tp.AddSwitch(Switch{Name: "ssw", Role: RoleSSW})
	c1 := tp.AddCircuit(rsw, f1, 1.0)
	c2 := tp.AddCircuit(rsw, f2, 1.0)
	c3 := tp.AddCircuit(f1, ssw, 2.0)
	c4 := tp.AddCircuit(f2, ssw, 2.0)
	return tp, []SwitchID{rsw, f1, f2, ssw}, []CircuitID{c1, c2, c3, c4}
}

func TestRoleString(t *testing.T) {
	cases := map[Role]string{
		RoleRSW: "RSW", RoleFSW: "FSW", RoleSSW: "SSW", RoleFADU: "FADU",
		RoleFAUU: "FAUU", RoleMA: "MA", RoleEB: "EB", RoleDR: "DR", RoleEBB: "EBB",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, got, want)
		}
	}
	if got := Role(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown role should render its number, got %q", got)
	}
}

func TestParseRoleRoundTrip(t *testing.T) {
	for _, r := range Roles() {
		got, err := ParseRole(r.String())
		if err != nil {
			t.Fatalf("ParseRole(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("ParseRole(%q) = %v, want %v", r.String(), got, r)
		}
	}
	if _, err := ParseRole("not-a-role"); err == nil {
		t.Error("ParseRole should reject unknown names")
	}
	// Case-insensitivity and whitespace tolerance.
	if got, err := ParseRole("  ssw "); err != nil || got != RoleSSW {
		t.Errorf("ParseRole(\"  ssw \") = %v, %v", got, err)
	}
}

func TestRoleValid(t *testing.T) {
	if RoleUnknown.Valid() {
		t.Error("RoleUnknown must not be valid")
	}
	for _, r := range Roles() {
		if !r.Valid() {
			t.Errorf("%v should be valid", r)
		}
	}
	if Role(100).Valid() {
		t.Error("out-of-range role must not be valid")
	}
}

func TestAddSwitchAssignsDenseIDs(t *testing.T) {
	tp := New("t")
	for i := 0; i < 10; i++ {
		id := tp.AddSwitch(Switch{Role: RoleRSW})
		if id != SwitchID(i) {
			t.Fatalf("switch %d got ID %d", i, id)
		}
	}
	if tp.NumSwitches() != 10 {
		t.Fatalf("NumSwitches = %d, want 10", tp.NumSwitches())
	}
}

func TestAddSwitchDuplicateNamePanics(t *testing.T) {
	tp := New("t")
	tp.AddSwitch(Switch{Name: "x", Role: RoleRSW})
	defer func() {
		if recover() == nil {
			t.Error("duplicate name should panic")
		}
	}()
	tp.AddSwitch(Switch{Name: "x", Role: RoleRSW})
}

func TestAddCircuitSelfLoopPanics(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch(Switch{Role: RoleRSW})
	defer func() {
		if recover() == nil {
			t.Error("self-loop should panic")
		}
	}()
	tp.AddCircuit(a, a, 1)
}

func TestAddCircuitBadEndpointPanics(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch(Switch{Role: RoleRSW})
	defer func() {
		if recover() == nil {
			t.Error("invalid endpoint should panic")
		}
	}()
	tp.AddCircuit(a, SwitchID(99), 1)
}

func TestCircuitOther(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	c := tp.Circuit(ck[0])
	if c.Other(sw[0]) != sw[1] || c.Other(sw[1]) != sw[0] {
		t.Error("Other should return the opposite endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint should panic")
		}
	}()
	c.Other(sw[3])
}

func TestSwitchByName(t *testing.T) {
	tp, _, _ := buildDiamond(t)
	s, ok := tp.SwitchByName("fsw1")
	if !ok || s.Role != RoleFSW {
		t.Fatalf("SwitchByName(fsw1) = %+v, %v", s, ok)
	}
	if _, ok := tp.SwitchByName("nope"); ok {
		t.Error("SwitchByName should miss unknown names")
	}
}

func TestCircuitUpRequiresEndpointsAndFlag(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	if !tp.CircuitUp(ck[0]) {
		t.Fatal("fresh circuit should be up")
	}
	tp.SetSwitchActive(sw[1], false)
	if tp.CircuitUp(ck[0]) {
		t.Error("circuit with inactive endpoint must be down")
	}
	if tp.CircuitUp(ck[2]) {
		t.Error("circuit with inactive endpoint must be down")
	}
	tp.SetSwitchActive(sw[1], true)
	tp.SetCircuitActive(ck[0], false)
	if tp.CircuitUp(ck[0]) {
		t.Error("deactivated circuit must be down")
	}
}

func TestActiveDegree(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	if got := tp.ActiveDegree(sw[0]); got != 2 {
		t.Fatalf("rsw degree = %d, want 2", got)
	}
	tp.SetCircuitActive(ck[0], false)
	if got := tp.ActiveDegree(sw[0]); got != 1 {
		t.Fatalf("rsw degree after drain = %d, want 1", got)
	}
}

func TestStats(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	st := tp.Stats()
	if st.Switches != 4 || st.Circuits != 4 || st.Capacity != 6.0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PerRole[RoleFSW] != 2 {
		t.Errorf("PerRole[FSW] = %d, want 2", st.PerRole[RoleFSW])
	}
	if st.MaxActivePorts != 2 {
		t.Errorf("MaxActivePorts = %d, want 2", st.MaxActivePorts)
	}
	tp.SetSwitchActive(sw[3], false)
	st = tp.Stats()
	if st.Switches != 3 || st.Circuits != 2 {
		t.Fatalf("stats after drain = %+v", st)
	}
	_ = ck
}

func TestValidate(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	if err := tp.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	tp.SetPorts(sw[0], 1) // rsw has 2 active circuits
	if err := tp.Validate(); err == nil {
		t.Error("port overflow in base state should fail validation")
	}
	tp.SetPorts(sw[0], 2)
	if err := tp.Validate(); err != nil {
		t.Fatalf("restored topology rejected: %v", err)
	}
}

func TestValidateRejectsBadMetric(t *testing.T) {
	tp, _, ck := buildDiamond(t)
	tp.circuits[ck[0]].Metric = 0
	if err := tp.Validate(); err == nil {
		t.Error("metric 0 should fail validation")
	}
}

func TestSetMetricPanicsBelowOne(t *testing.T) {
	tp, _, ck := buildDiamond(t)
	defer func() {
		if recover() == nil {
			t.Error("SetMetric(0) should panic")
		}
	}()
	tp.SetMetric(ck[0], 0)
}

func TestClone(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	tp.SetSwitchActive(sw[1], false)
	cl := tp.Clone()
	if cl.String() != tp.String() {
		t.Fatalf("clone differs: %q vs %q", cl.String(), tp.String())
	}
	// Mutating the clone must not affect the original.
	cl.SetSwitchActive(sw[1], true)
	cl.SetCapacity(ck[0], 42)
	if tp.SwitchActive(sw[1]) {
		t.Error("clone activity leaked into original")
	}
	if tp.Circuit(ck[0]).Capacity == 42 {
		t.Error("clone capacity leaked into original")
	}
	s, ok := cl.SwitchByName("rsw")
	if !ok || s.ID != sw[0] {
		t.Error("clone lost name index")
	}
	if err := cl.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestSwitchesByRole(t *testing.T) {
	tp, _, _ := buildDiamond(t)
	fsws := tp.SwitchesByRole(RoleFSW)
	if len(fsws) != 2 {
		t.Fatalf("got %d FSWs, want 2", len(fsws))
	}
	if len(tp.SwitchesByRole(RoleEBB)) != 0 {
		t.Error("no EBBs expected")
	}
}

func TestNeighborNamesSorted(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	names := tp.NeighborNames(sw[0])
	if len(names) != 2 || names[0] != "fsw1" || names[1] != "fsw2" {
		t.Fatalf("NeighborNames = %v", names)
	}
}

func TestViewIndependence(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	v1 := tp.NewView()
	v2 := tp.NewView()
	v1.DrainSwitch(sw[1])
	if !v2.SwitchActive(sw[1]) {
		t.Error("views must be independent")
	}
	if tp.SwitchActive(sw[1]) == false {
		t.Error("view mutation must not touch base state")
	}
	if v1.CircuitUp(ck[0]) {
		t.Error("circuit via drained switch must be down in view")
	}
	if !v2.CircuitUp(ck[0]) {
		t.Error("other view unaffected")
	}
}

func TestViewReset(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	v := tp.NewView()
	v.DrainSwitch(sw[0])
	v.DrainCircuit(0)
	v.Reset()
	if !v.SwitchActive(sw[0]) || !v.CircuitActive(0) {
		t.Error("Reset should restore base activity")
	}
}

func TestViewResetReflectsBase(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	tp.SetSwitchActive(sw[2], false)
	v := tp.NewView()
	v.UndrainSwitch(sw[2])
	v.Reset()
	if v.SwitchActive(sw[2]) {
		t.Error("Reset should restore base (inactive) state")
	}
}

func TestViewEqualAndClone(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	v1 := tp.NewView()
	v2 := v1.Clone()
	if !v1.Equal(v2) {
		t.Fatal("clone should equal source")
	}
	v2.DrainSwitch(sw[0])
	if v1.Equal(v2) {
		t.Fatal("diverged views should differ")
	}
	v1.CopyFrom(v2)
	if !v1.Equal(v2) {
		t.Fatal("CopyFrom should converge views")
	}
}

func TestViewCopyFromDifferentTopologyPanics(t *testing.T) {
	tp1, _, _ := buildDiamond(t)
	tp2, _, _ := buildDiamond(t)
	v1, v2 := tp1.NewView(), tp2.NewView()
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom across topologies should panic")
		}
	}()
	v1.CopyFrom(v2)
}

func TestViewStatsMatchesTopologyStats(t *testing.T) {
	tp, _, _ := buildDiamond(t)
	v := tp.NewView()
	a, b := tp.Stats(), v.Stats()
	if a.Switches != b.Switches || a.Circuits != b.Circuits || a.Capacity != b.Capacity {
		t.Fatalf("fresh view stats %+v differ from base %+v", b, a)
	}
}

// Property: draining then undraining any subset of switches restores a view
// to its original state.
func TestViewDrainUndrainRoundTrip(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	f := func(mask uint8) bool {
		v := tp.NewView()
		orig := v.Clone()
		for i, s := range sw {
			if mask&(1<<uint(i)) != 0 {
				v.DrainSwitch(s)
			}
		}
		for i, s := range sw {
			if mask&(1<<uint(i)) != 0 {
				v.UndrainSwitch(s)
			}
		}
		return v.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a view's stats never count a circuit whose endpoint is drained.
func TestViewStatsConsistency(t *testing.T) {
	tp, sw, _ := buildDiamond(t)
	f := func(mask uint8) bool {
		v := tp.NewView()
		for i, s := range sw {
			if mask&(1<<uint(i)) != 0 {
				v.DrainSwitch(s)
			}
		}
		st := v.Stats()
		count := 0
		for c := 0; c < tp.NumCircuits(); c++ {
			if v.CircuitUp(CircuitID(c)) {
				count++
			}
		}
		return st.Circuits == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	v := tp.NewView()
	v.DrainSwitch(sw[2])
	tp.SetMetric(ck[3], 2)
	var buf strings.Builder
	if err := v.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "diamond"`, `"rsw"`, `"fsw1" -- "ssw"`, "rank=same"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Drained fsw2 and its circuits must be absent.
	if strings.Contains(out, `"fsw2"`) {
		t.Errorf("DOT output should omit drained switch:\n%s", out)
	}
	// Deterministic output.
	var buf2 strings.Builder
	if err := v.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("DOT output not deterministic")
	}
}
