package topo

import "testing"

// FuzzParseRole: arbitrary strings must never panic, and every successful
// parse must round-trip through String.
func FuzzParseRole(f *testing.F) {
	for _, r := range Roles() {
		f.Add(r.String())
	}
	f.Add("")
	f.Add("  ssw  ")
	f.Add("UNKNOWN")
	f.Add("ROLE(77)")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRole(s)
		if err != nil {
			return
		}
		if !r.Valid() {
			t.Fatalf("ParseRole(%q) returned invalid role %v without error", s, r)
		}
		back, err := ParseRole(r.String())
		if err != nil || back != r {
			t.Fatalf("role %v did not round trip: %v, %v", r, back, err)
		}
	})
}
