package topo

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the view as a Graphviz digraph for debugging and
// documentation: one node per active switch (shaped and ranked by role),
// one edge per up circuit labeled with its capacity. Inactive elements are
// omitted. Output is deterministic.
//
// Large topologies produce large graphs; the intended use is small
// examples and extracted neighborhoods.
func (v *View) WriteDOT(w io.Writer) error {
	t := v.t
	if _, err := fmt.Fprintf(w, "graph %q {\n  rankdir=BT;\n  node [fontsize=10];\n", t.Name); err != nil {
		return err
	}
	// Group switches by role for same-rank clustering, bottom-up.
	byRole := map[Role][]SwitchID{}
	for i := 0; i < t.NumSwitches(); i++ {
		id := SwitchID(i)
		if v.SwitchActive(id) {
			byRole[t.Switch(id).Role] = append(byRole[t.Switch(id).Role], id)
		}
	}
	roles := Roles()
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
	for _, r := range roles {
		ids := byRole[r]
		if len(ids) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  { rank=same;"); err != nil {
			return err
		}
		for _, id := range ids {
			if _, err := fmt.Fprintf(w, " %q;", t.Switch(id).Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, " }"); err != nil {
			return err
		}
	}
	for c := 0; c < t.NumCircuits(); c++ {
		cid := CircuitID(c)
		if !v.CircuitUp(cid) {
			continue
		}
		ck := t.Circuit(cid)
		label := fmt.Sprintf("%g", ck.Capacity)
		if ck.Metric != 1 {
			label = fmt.Sprintf("%g/m%d", ck.Capacity, ck.Metric)
		}
		if _, err := fmt.Fprintf(w, "  %q -- %q [label=%q];\n",
			t.Switch(ck.A).Name, t.Switch(ck.B).Name, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
