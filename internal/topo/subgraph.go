package topo

// Neighborhood returns the switches within the given hop radius of center
// over up circuits in the view (BFS, including center itself), in
// ascending ID order within each distance ring. Radius 0 returns just the
// center.
func (v *View) Neighborhood(center SwitchID, radius int) []SwitchID {
	t := v.t
	if !v.SwitchActive(center) {
		return nil
	}
	seen := map[SwitchID]bool{center: true}
	frontier := []SwitchID{center}
	out := []SwitchID{center}
	for hop := 0; hop < radius; hop++ {
		var next []SwitchID
		for _, u := range frontier {
			for _, cid := range t.Switch(u).Circuits() {
				if !v.CircuitUp(cid) {
					continue
				}
				w := t.Circuit(cid).Other(u)
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					out = append(out, w)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return out
}

// Subgraph builds a fresh topology containing exactly the given switches
// and the circuits between them, preserving names, attributes, metrics,
// and base activity. Use with View.Neighborhood and WriteDOT to extract a
// debuggable slice of a large region.
func (t *Topology) Subgraph(name string, switches []SwitchID) *Topology {
	sub := New(name)
	idMap := make(map[SwitchID]SwitchID, len(switches))
	for _, id := range switches {
		if _, dup := idMap[id]; dup {
			continue
		}
		s := *t.Switch(id)
		nid := sub.AddSwitch(s)
		sub.SetSwitchActive(nid, t.SwitchActive(id))
		idMap[id] = nid
	}
	for c := 0; c < t.NumCircuits(); c++ {
		ck := t.Circuit(CircuitID(c))
		na, okA := idMap[ck.A]
		nb, okB := idMap[ck.B]
		if !okA || !okB {
			continue
		}
		nc := sub.AddCircuit(na, nb, ck.Capacity)
		sub.SetMetric(nc, ck.Metric)
		sub.SetCircuitActive(nc, t.CircuitActive(CircuitID(c)))
	}
	return sub
}
