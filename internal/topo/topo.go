// Package topo models multi-layer datacenter network topologies.
//
// A topology is a graph of typed switches connected by circuits, mirroring
// the DCN architecture described in §2.1 of the Klotski paper (SIGCOMM'23):
// rack switches (RSW) aggregate into fabric switches (FSW) and spine
// switches (SSW) inside a fabric; fabrics in a region are interconnected by
// a fabric-aggregation layer (FADU/FAUU sub-switches of an HGRID); metro
// aggregation (MA/DMAG) and the backbone boundary (EB, DR, EBB) sit above.
//
// Topologies are built once and then treated as an immutable "universe":
// every switch and circuit that exists before, during, or after a migration
// is present in the graph, and a boolean activity flag per element records
// whether it currently carries traffic. Draining a switch clears its flag;
// undraining (onboarding) sets it. A circuit is "up" only when its own flag
// and both endpoint switches are active. Planners explore many hypothetical
// activity assignments cheaply through the View type without copying the
// graph itself.
package topo

import (
	"fmt"
	"sort"
	"strings"
)

// Role identifies the layer and function of a switch in the DCN.
type Role uint8

// Switch roles, bottom-up through the datacenter network (paper §2.1).
const (
	RoleUnknown Role = iota
	RoleRSW          // rack switch: top-of-rack, connects servers
	RoleFSW          // fabric switch: aggregates RSWs within a pod
	RoleSSW          // spine switch: interconnects FSWs across pods, one plane each
	RoleFADU         // fabric-aggregate downlink unit (HGRID sub-switch facing the fabric)
	RoleFAUU         // fabric-aggregate uplink unit (HGRID sub-switch facing upward)
	RoleMA           // metro-aggregation switch (DMAG layer)
	RoleEB           // edge/backbone border router on the backbone side
	RoleDR           // datacenter router at the DC/backbone boundary
	RoleEBB          // express backbone router at the WAN core
	numRoles
)

var roleNames = [...]string{
	RoleUnknown: "UNKNOWN",
	RoleRSW:     "RSW",
	RoleFSW:     "FSW",
	RoleSSW:     "SSW",
	RoleFADU:    "FADU",
	RoleFAUU:    "FAUU",
	RoleMA:      "MA",
	RoleEB:      "EB",
	RoleDR:      "DR",
	RoleEBB:     "EBB",
}

// String returns the conventional upper-case name of the role.
func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Valid reports whether r is one of the defined switch roles.
func (r Role) Valid() bool { return r > RoleUnknown && r < numRoles }

// ParseRole converts a role name such as "SSW" (case-insensitive) back to a
// Role. It returns an error for unknown names.
func ParseRole(s string) (Role, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	for r, name := range roleNames {
		if r != 0 && name == u {
			return Role(r), nil
		}
	}
	return RoleUnknown, fmt.Errorf("topo: unknown switch role %q", s)
}

// Roles returns all defined roles in bottom-up layer order.
func Roles() []Role {
	rs := make([]Role, 0, numRoles-1)
	for r := RoleRSW; r < numRoles; r++ {
		rs = append(rs, r)
	}
	return rs
}

// SwitchID indexes a switch within a Topology. IDs are dense, starting at 0,
// in insertion order.
type SwitchID int32

// CircuitID indexes a circuit within a Topology. IDs are dense, starting at
// 0, in insertion order.
type CircuitID int32

// NoSwitch is the invalid switch ID.
const NoSwitch SwitchID = -1

// NoCircuit is the invalid circuit ID.
const NoCircuit CircuitID = -1

// Switch is one network element: a physical (or disaggregated sub-) switch.
//
// Position fields (DC, Pod, Plane, Grid) locate the switch in the regional
// layout; -1 means "not applicable" for the given role. Generation
// distinguishes hardware generations that coexist during a migration
// (e.g. HGRID v1 vs v2). Ports is the hard physical port budget used by the
// port constraints (paper Eq. 6).
type Switch struct {
	ID         SwitchID
	Name       string
	Role       Role
	DC         int // datacenter (building) index within the region, -1 if regional
	Pod        int // pod index within the fabric, -1 above the FSW layer
	Plane      int // plane index (SSW), -1 otherwise
	Grid       int // HGRID grid index (FADU/FAUU), -1 otherwise
	Generation int // hardware generation, 1-based
	Ports      int // physical port budget; 0 means unconstrained

	circuits []CircuitID // incident circuits, in insertion order
}

// Circuits returns the IDs of all circuits incident to the switch, active or
// not. The returned slice is owned by the topology and must not be modified.
func (s *Switch) Circuits() []CircuitID { return s.circuits }

// Circuit is a physical link between two switches with a fixed capacity.
//
// Metric is the routing cost of traversing the circuit (IGP-metric style);
// ECMP places traffic on metric-shortest paths. The default metric of 1
// makes routing hop-count shortest-path; operators raise the metric of
// long-haul or to-be-decommissioned circuits so that newly inserted layers
// attract a fair traffic share (the "special routing configurations" of
// paper §7.1).
type Circuit struct {
	ID       CircuitID
	A, B     SwitchID
	Capacity float64 // in Tbps
	Metric   int32   // routing cost, ≥ 1; 0 is normalized to 1 at AddCircuit
}

// Other returns the endpoint of the circuit that is not s. It panics if s is
// not an endpoint.
func (c *Circuit) Other(s SwitchID) SwitchID {
	switch s {
	case c.A:
		return c.B
	case c.B:
		return c.A
	}
	panic(fmt.Sprintf("topo: switch %d is not an endpoint of circuit %d", s, c.ID))
}

// Topology is the static switch/circuit universe plus the base activity
// assignment (which elements carry traffic in the original network state).
//
// The zero value is an empty topology ready for use; add elements with
// AddSwitch and AddCircuit.
type Topology struct {
	Name string

	switches []Switch
	circuits []Circuit
	byName   map[string]SwitchID

	swActive []bool
	ckActive []bool
}

// New returns an empty named topology.
func New(name string) *Topology {
	return &Topology{Name: name, byName: make(map[string]SwitchID)}
}

// AddSwitch adds a switch and returns its assigned ID. The ID and incident
// circuit list in the argument are ignored and managed by the topology.
// Switches are active by default. Duplicate names are rejected with a panic
// because they always indicate a generator bug.
func (t *Topology) AddSwitch(s Switch) SwitchID {
	if t.byName == nil {
		t.byName = make(map[string]SwitchID)
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("%s-%d", s.Role, len(t.switches))
	}
	if _, dup := t.byName[s.Name]; dup {
		panic(fmt.Sprintf("topo: duplicate switch name %q", s.Name))
	}
	id := SwitchID(len(t.switches))
	s.ID = id
	s.circuits = nil
	t.switches = append(t.switches, s)
	t.swActive = append(t.swActive, true)
	t.byName[s.Name] = id
	return id
}

// AddCircuit connects switches a and b with a circuit of the given capacity
// (Tbps) and returns its ID. Circuits are active by default.
func (t *Topology) AddCircuit(a, b SwitchID, capacity float64) CircuitID {
	if !t.validSwitch(a) || !t.validSwitch(b) {
		panic(fmt.Sprintf("topo: AddCircuit with invalid endpoint (%d, %d)", a, b))
	}
	if a == b {
		panic(fmt.Sprintf("topo: self-loop circuit on switch %d", a))
	}
	id := CircuitID(len(t.circuits))
	t.circuits = append(t.circuits, Circuit{ID: id, A: a, B: b, Capacity: capacity, Metric: 1})
	t.ckActive = append(t.ckActive, true)
	t.switches[a].circuits = append(t.switches[a].circuits, id)
	t.switches[b].circuits = append(t.switches[b].circuits, id)
	return id
}

// SetCapacity reassigns a circuit's capacity. Builders use it for per-layer
// capacity shaping after the wiring is known.
func (t *Topology) SetCapacity(id CircuitID, capacity float64) {
	t.circuits[id].Capacity = capacity
}

// SetMetric reassigns a circuit's routing metric (must be ≥ 1).
func (t *Topology) SetMetric(id CircuitID, metric int32) {
	if metric < 1 {
		panic(fmt.Sprintf("topo: metric %d < 1 on circuit %d", metric, id))
	}
	t.circuits[id].Metric = metric
}

func (t *Topology) validSwitch(id SwitchID) bool {
	return id >= 0 && int(id) < len(t.switches)
}

func (t *Topology) validCircuit(id CircuitID) bool {
	return id >= 0 && int(id) < len(t.circuits)
}

// NumSwitches returns the total number of switches in the universe,
// active or not.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumCircuits returns the total number of circuits in the universe,
// active or not.
func (t *Topology) NumCircuits() int { return len(t.circuits) }

// Switch returns the switch with the given ID. The returned pointer is into
// topology-owned storage; callers must treat it as read-only.
func (t *Topology) Switch(id SwitchID) *Switch {
	return &t.switches[id]
}

// Circuit returns the circuit with the given ID. The returned pointer is
// into topology-owned storage; callers must treat it as read-only.
func (t *Topology) Circuit(id CircuitID) *Circuit {
	return &t.circuits[id]
}

// SwitchByName looks a switch up by its unique name.
func (t *Topology) SwitchByName(name string) (*Switch, bool) {
	id, ok := t.byName[name]
	if !ok {
		return nil, false
	}
	return &t.switches[id], true
}

// SetPorts assigns the physical port budget of a switch. Builders call it
// after wiring, when the final degree is known.
func (t *Topology) SetPorts(id SwitchID, ports int) {
	t.switches[id].Ports = ports
}

// SetSwitchActive sets the base activity of a switch (whether it carries
// traffic in the original network state).
func (t *Topology) SetSwitchActive(id SwitchID, active bool) {
	t.swActive[id] = active
}

// SetCircuitActive sets the base activity of a circuit.
func (t *Topology) SetCircuitActive(id CircuitID, active bool) {
	t.ckActive[id] = active
}

// SwitchActive reports the base activity flag of a switch.
func (t *Topology) SwitchActive(id SwitchID) bool { return t.swActive[id] }

// CircuitActive reports the base activity flag of the circuit itself,
// ignoring endpoint state. Use CircuitUp for end-to-end usability.
func (t *Topology) CircuitActive(id CircuitID) bool { return t.ckActive[id] }

// CircuitUp reports whether a circuit can carry traffic in the base state:
// its own flag and both endpoints must be active.
func (t *Topology) CircuitUp(id CircuitID) bool {
	c := &t.circuits[id]
	return t.ckActive[id] && t.swActive[c.A] && t.swActive[c.B]
}

// ActiveDegree returns the number of up circuits incident to the switch in
// the base state.
func (t *Topology) ActiveDegree(id SwitchID) int {
	n := 0
	for _, c := range t.switches[id].circuits {
		if t.CircuitUp(c) {
			n++
		}
	}
	return n
}

// SwitchesByRole returns the IDs of all switches with the given role, in ID
// order.
func (t *Topology) SwitchesByRole(r Role) []SwitchID {
	var ids []SwitchID
	for i := range t.switches {
		if t.switches[i].Role == r {
			ids = append(ids, SwitchID(i))
		}
	}
	return ids
}

// Stats summarizes a topology or a view of it.
type Stats struct {
	Switches       int     // active switches
	Circuits       int     // up circuits
	TotalSwitches  int     // universe size
	TotalCircuits  int     // universe size
	Capacity       float64 // sum of up-circuit capacities, Tbps
	PerRole        map[Role]int
	MaxActivePorts int // highest up-circuit count on any switch
}

// Stats computes summary statistics for the base activity state.
func (t *Topology) Stats() Stats {
	return t.statsWith(t.SwitchActive, t.CircuitUp)
}

func (t *Topology) statsWith(swUp func(SwitchID) bool, ckUp func(CircuitID) bool) Stats {
	st := Stats{
		TotalSwitches: len(t.switches),
		TotalCircuits: len(t.circuits),
		PerRole:       make(map[Role]int),
	}
	degree := make([]int, len(t.switches))
	for i := range t.switches {
		if swUp(SwitchID(i)) {
			st.Switches++
			st.PerRole[t.switches[i].Role]++
		}
	}
	for i := range t.circuits {
		if ckUp(CircuitID(i)) {
			st.Circuits++
			st.Capacity += t.circuits[i].Capacity
			degree[t.circuits[i].A]++
			degree[t.circuits[i].B]++
		}
	}
	for _, d := range degree {
		if d > st.MaxActivePorts {
			st.MaxActivePorts = d
		}
	}
	return st
}

// String returns a short human-readable summary.
func (t *Topology) String() string {
	st := t.Stats()
	return fmt.Sprintf("%s: %d/%d switches, %d/%d circuits, %.1f Tbps up",
		t.Name, st.Switches, st.TotalSwitches, st.Circuits, st.TotalCircuits, st.Capacity)
}

// Validate checks structural invariants: endpoint IDs in range, no
// zero-capacity circuits, port budgets not exceeded by the active circuit
// count in the base state, and name-index consistency. It returns the
// first violation found.
func (t *Topology) Validate() error {
	for i := range t.circuits {
		c := &t.circuits[i]
		if !t.validSwitch(c.A) || !t.validSwitch(c.B) {
			return fmt.Errorf("topo: circuit %d has out-of-range endpoint", i)
		}
		if c.Capacity <= 0 {
			return fmt.Errorf("topo: circuit %d (%s-%s) has non-positive capacity %v",
				i, t.switches[c.A].Name, t.switches[c.B].Name, c.Capacity)
		}
		if c.Metric < 1 {
			return fmt.Errorf("topo: circuit %d (%s-%s) has metric %d < 1",
				i, t.switches[c.A].Name, t.switches[c.B].Name, c.Metric)
		}
	}
	for i := range t.switches {
		s := &t.switches[i]
		if !s.Role.Valid() {
			return fmt.Errorf("topo: switch %q has invalid role", s.Name)
		}
		// Port budgets constrain *active* circuits, not physical wiring:
		// a migration universe deliberately contains both the old and new
		// wiring of a switch even when they cannot coexist in service.
		if s.Ports > 0 && t.ActiveDegree(s.ID) > s.Ports {
			return fmt.Errorf("topo: switch %q has %d active circuits but only %d ports",
				s.Name, t.ActiveDegree(s.ID), s.Ports)
		}
		if got, ok := t.byName[s.Name]; !ok || got != SwitchID(i) {
			return fmt.Errorf("topo: name index inconsistent for switch %q", s.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the topology, including base activity.
func (t *Topology) Clone() *Topology {
	nt := &Topology{
		Name:     t.Name,
		switches: make([]Switch, len(t.switches)),
		circuits: append([]Circuit(nil), t.circuits...),
		byName:   make(map[string]SwitchID, len(t.byName)),
		swActive: append([]bool(nil), t.swActive...),
		ckActive: append([]bool(nil), t.ckActive...),
	}
	copy(nt.switches, t.switches)
	for i := range nt.switches {
		nt.switches[i].circuits = append([]CircuitID(nil), t.switches[i].circuits...)
	}
	for k, v := range t.byName {
		nt.byName[k] = v
	}
	return nt
}

// NeighborNames returns the sorted names of switches adjacent to id through
// any circuit (regardless of activity). It is used by symmetry detection
// and by tests.
func (t *Topology) NeighborNames(id SwitchID) []string {
	var names []string
	for _, cid := range t.switches[id].circuits {
		c := &t.circuits[cid]
		names = append(names, t.switches[c.Other(id)].Name)
	}
	sort.Strings(names)
	return names
}
