package topo

import "fmt"

// Merge combines two topology universes into one, prefixing switch names
// to keep them unique and preserving base activity. It returns the merged
// topology plus the ID offsets of b's switches and circuits (a's IDs are
// unchanged): b's switch s becomes SwitchID(int32(s) + swOffset), and
// likewise for circuits.
//
// Merging is how multi-region migrations are planned jointly (paper §2.2,
// "Consider multiple DCs": draining circuits in one datacenter strands
// the capacity of their peers in another, so independent per-region plans
// can be mutually unsafe).
func Merge(name, prefixA string, a *Topology, prefixB string, b *Topology) (*Topology, SwitchID, CircuitID) {
	m := New(name)
	copyInto := func(prefix string, src *Topology) {
		for i := 0; i < src.NumSwitches(); i++ {
			s := *src.Switch(SwitchID(i))
			s.Name = prefix + s.Name
			id := m.AddSwitch(s)
			m.SetSwitchActive(id, src.SwitchActive(SwitchID(i)))
		}
	}
	copyCircuits := func(src *Topology, swOffset SwitchID) {
		for i := 0; i < src.NumCircuits(); i++ {
			c := src.Circuit(CircuitID(i))
			id := m.AddCircuit(c.A+swOffset, c.B+swOffset, c.Capacity)
			m.SetMetric(id, c.Metric)
			m.SetCircuitActive(id, src.CircuitActive(CircuitID(i)))
		}
	}
	copyInto(prefixA, a)
	swOffset := SwitchID(a.NumSwitches())
	copyInto(prefixB, b)
	copyCircuits(a, 0)
	ckOffset := CircuitID(a.NumCircuits())
	copyCircuits(b, swOffset)
	return m, swOffset, ckOffset
}

// MustSwitch returns the ID of the named switch or panics — a builder
// convenience for wiring merged universes.
func (t *Topology) MustSwitch(name string) SwitchID {
	s, ok := t.SwitchByName(name)
	if !ok {
		panic(fmt.Sprintf("topo: no switch named %q", name))
	}
	return s.ID
}
