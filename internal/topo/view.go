package topo

// View is a mutable activity overlay on an immutable topology universe.
//
// Planners evaluate thousands of hypothetical intermediate network states
// per task; a View lets them flip drain/undrain flags without copying the
// graph. Views are cheap to create (two boolean slices) and cheap to Reset.
// A View is not safe for concurrent use; create one per goroutine.
type View struct {
	t        *Topology
	swActive []bool
	ckActive []bool
}

// NewView returns a view initialized to the topology's base activity state.
func (t *Topology) NewView() *View {
	return &View{
		t:        t,
		swActive: append([]bool(nil), t.swActive...),
		ckActive: append([]bool(nil), t.ckActive...),
	}
}

// Topology returns the underlying immutable topology.
func (v *View) Topology() *Topology { return v.t }

// Reset restores the view to the topology's base activity state.
func (v *View) Reset() {
	copy(v.swActive, v.t.swActive)
	copy(v.ckActive, v.t.ckActive)
}

// SetSwitchActive overrides the activity of a switch in this view only.
func (v *View) SetSwitchActive(id SwitchID, active bool) { v.swActive[id] = active }

// SetCircuitActive overrides the activity of a circuit in this view only.
func (v *View) SetCircuitActive(id CircuitID, active bool) { v.ckActive[id] = active }

// DrainSwitch deactivates a switch (all its circuits stop carrying traffic).
func (v *View) DrainSwitch(id SwitchID) { v.swActive[id] = false }

// UndrainSwitch activates a switch.
func (v *View) UndrainSwitch(id SwitchID) { v.swActive[id] = true }

// DrainCircuit deactivates a single circuit without touching its endpoints.
func (v *View) DrainCircuit(id CircuitID) { v.ckActive[id] = false }

// UndrainCircuit activates a single circuit.
func (v *View) UndrainCircuit(id CircuitID) { v.ckActive[id] = true }

// SwitchActive reports whether the switch carries traffic in this view.
func (v *View) SwitchActive(id SwitchID) bool { return v.swActive[id] }

// CircuitActive reports the circuit's own flag, ignoring endpoints.
func (v *View) CircuitActive(id CircuitID) bool { return v.ckActive[id] }

// CircuitUp reports whether the circuit can carry traffic: its own flag and
// both endpoint switches must be active.
func (v *View) CircuitUp(id CircuitID) bool {
	c := &v.t.circuits[id]
	return v.ckActive[id] && v.swActive[c.A] && v.swActive[c.B]
}

// ActiveDegree returns the number of up circuits incident to the switch.
func (v *View) ActiveDegree(id SwitchID) int {
	n := 0
	for _, c := range v.t.switches[id].circuits {
		if v.CircuitUp(c) {
			n++
		}
	}
	return n
}

// Stats computes summary statistics for the view's activity state.
func (v *View) Stats() Stats {
	return v.t.statsWith(v.SwitchActive, v.CircuitUp)
}

// Equal reports whether two views over the same topology have identical
// activity assignments.
func (v *View) Equal(o *View) bool {
	if v.t != o.t {
		return false
	}
	for i := range v.swActive {
		if v.swActive[i] != o.swActive[i] {
			return false
		}
	}
	for i := range v.ckActive {
		if v.ckActive[i] != o.ckActive[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the view.
func (v *View) Clone() *View {
	return &View{
		t:        v.t,
		swActive: append([]bool(nil), v.swActive...),
		ckActive: append([]bool(nil), v.ckActive...),
	}
}

// CopyFrom makes v's activity identical to src's. Both views must be over
// the same topology.
func (v *View) CopyFrom(src *View) {
	if v.t != src.t {
		panic("topo: CopyFrom across different topologies")
	}
	copy(v.swActive, src.swActive)
	copy(v.ckActive, src.ckActive)
}
