package topo

// View is a mutable activity overlay on an immutable topology universe.
//
// Planners evaluate thousands of hypothetical intermediate network states
// per task; a View lets them flip drain/undrain flags without copying the
// graph. Views are cheap to create (two boolean slices) and cheap to Reset.
// A View is not safe for concurrent use; create one per goroutine.
type View struct {
	t        *Topology
	swActive []bool
	ckActive []bool

	// Touched-element tracking, enabled by Track. When on, every mutation
	// that actually changes an activity flag records the element, so an
	// incremental evaluator can invalidate exactly the state derived from
	// what changed instead of rebuilding from the whole view.
	tracking  bool
	touchedSw []SwitchID
	touchedCk []CircuitID
}

// NewView returns a view initialized to the topology's base activity state.
func (t *Topology) NewView() *View {
	return &View{
		t:        t,
		swActive: append([]bool(nil), t.swActive...),
		ckActive: append([]bool(nil), t.ckActive...),
	}
}

// Topology returns the underlying immutable topology.
func (v *View) Topology() *Topology { return v.t }

// Reset restores the view to the topology's base activity state. With
// tracking enabled, every element whose flag changes is recorded.
func (v *View) Reset() {
	if v.tracking {
		for i := range v.swActive {
			if v.swActive[i] != v.t.swActive[i] {
				v.touchedSw = append(v.touchedSw, SwitchID(i))
			}
		}
		for i := range v.ckActive {
			if v.ckActive[i] != v.t.ckActive[i] {
				v.touchedCk = append(v.touchedCk, CircuitID(i))
			}
		}
	}
	copy(v.swActive, v.t.swActive)
	copy(v.ckActive, v.t.ckActive)
}

// Track enables touched-element reporting: subsequent mutations that change
// an activity flag are recorded until TakeTouched drains them. No-op
// mutations (setting a flag to its current value) are not recorded.
func (v *View) Track() { v.tracking = true }

// TakeTouched returns the switches and circuits whose activity changed since
// the last TakeTouched (or since Track), and resets the record. Elements
// flipped twice appear twice; consumers are expected to deduplicate. The
// returned slices are invalidated by the next mutation after the next
// TakeTouched call — copy them if they must outlive that.
func (v *View) TakeTouched() ([]SwitchID, []CircuitID) {
	sw, ck := v.touchedSw, v.touchedCk
	v.touchedSw = nil
	v.touchedCk = nil
	return sw, ck
}

// SetSwitchActive overrides the activity of a switch in this view only.
func (v *View) SetSwitchActive(id SwitchID, active bool) {
	if v.tracking && v.swActive[id] != active {
		v.touchedSw = append(v.touchedSw, id)
	}
	v.swActive[id] = active
}

// SetCircuitActive overrides the activity of a circuit in this view only.
func (v *View) SetCircuitActive(id CircuitID, active bool) {
	if v.tracking && v.ckActive[id] != active {
		v.touchedCk = append(v.touchedCk, id)
	}
	v.ckActive[id] = active
}

// DrainSwitch deactivates a switch (all its circuits stop carrying traffic).
func (v *View) DrainSwitch(id SwitchID) { v.SetSwitchActive(id, false) }

// UndrainSwitch activates a switch.
func (v *View) UndrainSwitch(id SwitchID) { v.SetSwitchActive(id, true) }

// DrainCircuit deactivates a single circuit without touching its endpoints.
func (v *View) DrainCircuit(id CircuitID) { v.SetCircuitActive(id, false) }

// UndrainCircuit activates a single circuit.
func (v *View) UndrainCircuit(id CircuitID) { v.SetCircuitActive(id, true) }

// SwitchActive reports whether the switch carries traffic in this view.
func (v *View) SwitchActive(id SwitchID) bool { return v.swActive[id] }

// CircuitActive reports the circuit's own flag, ignoring endpoints.
func (v *View) CircuitActive(id CircuitID) bool { return v.ckActive[id] }

// CircuitUp reports whether the circuit can carry traffic: its own flag and
// both endpoint switches must be active.
func (v *View) CircuitUp(id CircuitID) bool {
	c := &v.t.circuits[id]
	return v.ckActive[id] && v.swActive[c.A] && v.swActive[c.B]
}

// ActiveDegree returns the number of up circuits incident to the switch.
func (v *View) ActiveDegree(id SwitchID) int {
	n := 0
	for _, c := range v.t.switches[id].circuits {
		if v.CircuitUp(c) {
			n++
		}
	}
	return n
}

// Stats computes summary statistics for the view's activity state.
func (v *View) Stats() Stats {
	return v.t.statsWith(v.SwitchActive, v.CircuitUp)
}

// Equal reports whether two views over the same topology have identical
// activity assignments.
func (v *View) Equal(o *View) bool {
	if v.t != o.t {
		return false
	}
	for i := range v.swActive {
		if v.swActive[i] != o.swActive[i] {
			return false
		}
	}
	for i := range v.ckActive {
		if v.ckActive[i] != o.ckActive[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the view.
func (v *View) Clone() *View {
	return &View{
		t:        v.t,
		swActive: append([]bool(nil), v.swActive...),
		ckActive: append([]bool(nil), v.ckActive...),
	}
}

// CopyFrom makes v's activity identical to src's. Both views must be over
// the same topology.
func (v *View) CopyFrom(src *View) {
	if v.t != src.t {
		panic("topo: CopyFrom across different topologies")
	}
	if v.tracking {
		for i := range v.swActive {
			if v.swActive[i] != src.swActive[i] {
				v.touchedSw = append(v.touchedSw, SwitchID(i))
			}
		}
		for i := range v.ckActive {
			if v.ckActive[i] != src.ckActive[i] {
				v.touchedCk = append(v.touchedCk, CircuitID(i))
			}
		}
	}
	copy(v.swActive, src.swActive)
	copy(v.ckActive, src.ckActive)
}
