package topo

import "testing"

func TestNeighborhood(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	v := tp.NewView()
	if got := v.Neighborhood(sw[0], 0); len(got) != 1 || got[0] != sw[0] {
		t.Fatalf("radius 0 = %v", got)
	}
	if got := v.Neighborhood(sw[0], 1); len(got) != 3 { // rsw + both fsws
		t.Fatalf("radius 1 = %v, want 3 switches", got)
	}
	if got := v.Neighborhood(sw[0], 2); len(got) != 4 {
		t.Fatalf("radius 2 = %v, want full diamond", got)
	}
	// Draining a branch shrinks the neighborhood.
	v.DrainCircuit(ck[0])
	if got := v.Neighborhood(sw[0], 1); len(got) != 2 {
		t.Fatalf("radius 1 after drain = %v, want 2", got)
	}
	// Inactive center yields nothing.
	v.DrainSwitch(sw[0])
	if got := v.Neighborhood(sw[0], 3); got != nil {
		t.Fatalf("inactive center = %v, want nil", got)
	}
}

func TestSubgraph(t *testing.T) {
	tp, sw, ck := buildDiamond(t)
	tp.SetMetric(ck[2], 2)
	tp.SetSwitchActive(sw[2], false)
	sub := tp.Subgraph("slice", []SwitchID{sw[0], sw[1], sw[3]})
	if sub.NumSwitches() != 3 {
		t.Fatalf("subgraph switches = %d", sub.NumSwitches())
	}
	// Induced circuits: rsw-fsw1 and fsw1-ssw only (fsw2 excluded).
	if sub.NumCircuits() != 2 {
		t.Fatalf("subgraph circuits = %d, want 2", sub.NumCircuits())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subgraph invalid: %v", err)
	}
	// Names and attributes preserved.
	s, ok := sub.SwitchByName("fsw1")
	if !ok || s.Role != RoleFSW {
		t.Fatal("subgraph lost switch identity")
	}
	// Metric preserved on the fsw1-ssw circuit.
	found := false
	for c := 0; c < sub.NumCircuits(); c++ {
		if sub.Circuit(CircuitID(c)).Metric == 2 {
			found = true
		}
	}
	if !found {
		t.Error("subgraph lost circuit metric")
	}
	// Duplicate input IDs are deduplicated.
	dup := tp.Subgraph("dup", []SwitchID{sw[0], sw[0]})
	if dup.NumSwitches() != 1 {
		t.Fatalf("duplicate inputs produced %d switches", dup.NumSwitches())
	}
}

func TestMerge(t *testing.T) {
	a, swA, _ := buildDiamond(t)
	b, swB, _ := buildDiamond(t)
	b.SetSwitchActive(swB[1], false)
	m, swOff, ckOff := Merge("merged", "a/", a, "b/", b)
	if m.NumSwitches() != a.NumSwitches()+b.NumSwitches() {
		t.Fatalf("merged switches = %d", m.NumSwitches())
	}
	if m.NumCircuits() != a.NumCircuits()+b.NumCircuits() {
		t.Fatalf("merged circuits = %d", m.NumCircuits())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
	// Prefixed names resolve; activity preserved across the offset.
	if m.MustSwitch("a/rsw") != swA[0] {
		t.Error("a-side IDs should be unchanged")
	}
	if got := m.MustSwitch("b/rsw"); got != swB[0]+swOff {
		t.Errorf("b/rsw = %d, want offset %d", got, swB[0]+swOff)
	}
	if m.SwitchActive(swB[1] + swOff) {
		t.Error("b-side activity not preserved")
	}
	if ckOff != CircuitID(a.NumCircuits()) {
		t.Errorf("circuit offset = %d", ckOff)
	}
}

func TestMustSwitchPanics(t *testing.T) {
	tp, _, _ := buildDiamond(t)
	defer func() {
		if recover() == nil {
			t.Error("MustSwitch on missing name should panic")
		}
	}()
	tp.MustSwitch("missing")
}
