package baseline

import (
	"context"
	"errors"
	"testing"
	"time"

	"klotski/internal/core"
	"klotski/internal/migration"
)

// TestBudgetErrorsUnified asserts all four planners — core A* and DP plus
// the MRC and Janus baselines — honor Options.MaxStates and
// Options.Timeout and surface overruns as errors matching core.ErrBudget
// via errors.Is, so callers can handle budget exhaustion uniformly
// regardless of planner.
func TestBudgetErrorsUnified(t *testing.T) {
	task := bridgeTask(t, 3, 3, 100, 100, 150, 0)

	planners := []struct {
		name string
		plan func(context.Context, *migration.Task, core.Options) (*core.Plan, error)
	}{
		{"astar", core.PlanAStarContext},
		{"dp", core.PlanDPContext},
		{"mrc", PlanMRCContext},
		{"janus", PlanJanusContext},
	}
	budgets := []struct {
		name string
		opts core.Options
	}{
		{"max-states", core.Options{Alpha: 0.2, MaxStates: 1}},
		{"timeout", core.Options{Alpha: 0.2, Timeout: time.Nanosecond}},
	}

	for _, p := range planners {
		for _, b := range budgets {
			t.Run(p.name+"/"+b.name, func(t *testing.T) {
				_, err := p.plan(context.Background(), task, b.opts)
				if err == nil {
					t.Fatalf("%s should exhaust its %s budget, got a plan", p.name, b.name)
				}
				if !errors.Is(err, core.ErrBudget) {
					t.Fatalf("%s under %s: want errors.Is(err, core.ErrBudget), got %v", p.name, b.name, err)
				}
			})
		}
		t.Run(p.name+"/cancelled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := p.plan(ctx, task, core.Options{Alpha: 0.2})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s under cancelled ctx: want context.Canceled, got %v", p.name, err)
			}
		})
	}

	// The budget must bound work, not forbid planning: every planner
	// completes the same task under a generous budget.
	for _, p := range planners {
		if _, err := p.plan(context.Background(), task,
			core.Options{Alpha: 0.2, MaxStates: 1_000_000, Timeout: time.Minute}); err != nil {
			t.Fatalf("%s with generous budget: %v", p.name, err)
		}
	}
}
