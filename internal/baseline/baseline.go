// Package baseline implements the two state-of-the-art planners Klotski is
// evaluated against (paper §6.1):
//
//   - MRC: a greedy planner that, at every step, picks the feasible next
//     action maximizing the minimum residual circuit capacity, in the
//     style of the minimal-rewiring planner [37].
//   - Janus: a symmetry-based planner [4] that preprocesses the
//     feasibility of every available action combination and then
//     exhaustively traverses the pruned search space for the optimal
//     ordering. Following the paper's methodology, Janus's "superblock" is
//     defined as Klotski's operation block.
//
// Neither baseline can plan migrations that change the network's layer
// structure (the DMAG migration of §2.4): MRC's residual-capacity ranking
// and Janus's symmetry model both assume equipment is swapped in place.
// Both return core.ErrUnsupported for such tasks, which the evaluation
// renders as crosses (Fig. 9).
package baseline

import (
	"context"
	"fmt"
	"math"
	"time"

	"klotski/internal/core"
	"klotski/internal/migration"
	"klotski/internal/routing"
)

// mrcStickiness is the same-type preference margin in residual-capacity
// units; see the candidate-scoring loop.
const mrcStickiness = 0.02

// PlanMRC plans a migration with the greedy max-min-residual-capacity
// strategy. The returned plan is safe but generally not cost-optimal
// (Fig. 8a): the greedy choice ignores run structure, so it changes action
// types more often than necessary.
func PlanMRC(task *migration.Task, opts core.Options) (*core.Plan, error) {
	return PlanMRCContext(context.Background(), task, opts)
}

// PlanMRCContext is PlanMRC with cooperative cancellation: the context and
// the Options.Timeout/MaxStates budget are checked at every greedy step,
// and overruns wrap core.ErrBudget exactly like the core planners'.
func PlanMRCContext(ctx context.Context, task *migration.Task, opts core.Options) (*core.Plan, error) {
	if task.TopologyChanging {
		return nil, core.ErrUnsupported
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 4_000_000
	}
	theta := opts.Theta
	if theta <= 0 {
		theta = 0.75
	}
	eval := opts.Evaluator
	if eval == nil {
		eval = routing.NewEvaluator(task.Topo)
	}
	rec := opts.Recorder
	span := rec.Span("mrc.plan")
	defer span.End()

	counts := make([]int, task.NumTypes())
	if opts.InitialCounts != nil {
		copy(counts, opts.InitialCounts)
	}

	// MRC is not bound by Klotski's canonical within-type ordering: at
	// every step it evaluates every remaining block as a candidate (the
	// paper's "preprocess all available action combinations", and the main
	// reason it measures 7.1–262.6× slower than Klotski-A*).
	done := make([]bool, len(task.Blocks))
	remaining := 0
	view := task.Topo.NewView()
	for ty := 0; ty < task.NumTypes(); ty++ {
		blocks := task.BlocksOfType(migration.ActionType(ty))
		for j := range blocks {
			if j < counts[ty] {
				done[blocks[j]] = true
				task.Apply(view, blocks[j])
			} else {
				remaining++
			}
		}
	}

	var seq []int
	metrics := core.Metrics{}
	copts := routing.CheckOpts{Theta: theta, Split: opts.Split}
	last := core.NoLast
	if opts.InitialCounts != nil {
		last = opts.InitialLast
	}
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baseline: MRC cancelled after %d steps: %w", len(seq), err)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: MRC exceeded its time budget after %d steps, %d checks",
				core.ErrBudget, len(seq), metrics.Checks)
		}
		if metrics.StatesCreated > maxStates {
			return nil, fmt.Errorf("%w: MRC exceeded %d states after %d steps",
				core.ErrBudget, maxStates, len(seq))
		}
		// Boundary-check semantics (paper Eq. 4–6): switching action types
		// ends the current parallel run, so the current state must be safe
		// before a different-type action may start. Extending the run is
		// always allowed.
		boundaryOK := last == core.NoLast
		if !boundaryOK {
			metrics.Checks++
			checkStart := time.Now()
			boundaryOK = eval.Check(view, &task.Demands, copts).OK()
			rec.CheckObserved(time.Since(checkStart))
		}
		bestResidual := math.Inf(-1)
		bestBlock := -1
		for blockID := range task.Blocks {
			if done[blockID] {
				continue
			}
			at := task.Blocks[blockID].Type
			if at != last && !boundaryOK {
				continue
			}
			task.Apply(view, blockID)
			// MRC ranks candidates by full placement statistics, so it
			// cannot use an early-exit check: every candidate costs a
			// complete evaluation. Each evaluated candidate materializes
			// one hypothetical state, which is what MaxStates bounds.
			evalStart := time.Now()
			res, viol := eval.Evaluate(view, &task.Demands, copts)
			metrics.Checks++
			metrics.StatesCreated++
			rec.CheckObserved(time.Since(evalStart))
			rec.StateCreated()
			task.Revert(view, blockID)
			score := res.MinResidual
			if at == last {
				// Field crews batch same-type work: continuing the current
				// run carries a small preference over switching, breaking
				// the near-ties that otherwise make the greedy flip-flop
				// action types at every step.
				score += mrcStickiness
			}
			if viol.Kind == routing.ViolationPorts {
				// Port-overflowing states are legal mid-run but dead ends
				// for the greedy: it cannot switch action types out of
				// them. Rank them below every port-safe state.
				score -= 1e6
			}
			if res.Unreachable > 0 {
				// States that strand demands are a last resort even
				// mid-run; rank them below any routable state.
				score = -1e9 - float64(res.Unreachable)
			}
			if score > bestResidual {
				bestResidual = score
				bestBlock = blockID
			}
		}
		if bestBlock < 0 {
			return nil, core.ErrInfeasible
		}
		task.Apply(view, bestBlock)
		seq = append(seq, bestBlock)
		done[bestBlock] = true
		last = task.Blocks[bestBlock].Type
		remaining--
		metrics.StatesPopped++
		rec.StateExpanded()
	}
	// The final state ends the last run and must itself be safe.
	if viol := eval.Check(view, &task.Demands, copts); !viol.OK() {
		return nil, core.ErrInfeasible
	}
	metrics.PlanningTime = time.Since(start)
	initialLast := core.NoLast
	if opts.InitialCounts != nil {
		initialLast = opts.InitialLast
	}
	return &core.Plan{
		Task:     task,
		Sequence: seq,
		Runs:     runsOf(task, seq),
		Cost:     core.SequenceCost(task, seq, opts.Alpha, initialLast),
		Metrics:  metrics,
	}, nil
}

func runsOf(t *migration.Task, seq []int) []core.Run {
	var runs []core.Run
	for _, id := range seq {
		ty := t.Blocks[id].Type
		if len(runs) == 0 || runs[len(runs)-1].Type != ty {
			runs = append(runs, core.Run{Type: ty})
		}
		runs[len(runs)-1].Blocks = append(runs[len(runs)-1].Blocks, id)
	}
	return runs
}
