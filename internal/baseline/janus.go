package baseline

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"klotski/internal/core"
	"klotski/internal/migration"
	"klotski/internal/obs"
	"klotski/internal/routing"
	"klotski/internal/topo"
)

// PlanJanus plans a migration in the style of Janus [4]: an exhaustive
// uniform-cost search over block orderings, pruned only by the intrinsic
// symmetry of the topology — operating equivalent blocks in either order
// yields equivalent states, so a state is identified by how many members
// of each *symmetry class* are done (plus the last action type).
//
// Following the paper's methodology, Janus's "superblock" is defined as
// Klotski's operation block. The contrast with Klotski is exactly the
// paper's point: Klotski's ordering-agnostic representation (§4.2) counts
// finished actions per *action type* — polynomial in the action count —
// while Janus can only count per symmetry class. When the topology is
// highly symmetric the two coincide; on production-like topologies there
// is little symmetry ("each symmetry block consists of at most two
// switches"), classes degenerate to singletons, and Janus's state space
// becomes the set of block subsets — exponential. The paper measures it
// 8.4–380.7× slower than Klotski-A* under a 24-hour cap; here overruns of
// Options.MaxStates / Options.Timeout surface as core.ErrBudget, which the
// figures render as crosses.
func PlanJanus(task *migration.Task, opts core.Options) (*core.Plan, error) {
	return PlanJanusContext(context.Background(), task, opts)
}

// PlanJanusContext is PlanJanus with cooperative cancellation: the context
// is polled alongside the MaxStates/Timeout budget in the search loop, and
// budget overruns wrap core.ErrBudget exactly like the core planners'.
func PlanJanusContext(ctx context.Context, task *migration.Task, opts core.Options) (*core.Plan, error) {
	if task.TopologyChanging {
		return nil, core.ErrUnsupported
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	j := &janusRun{task: task, opts: opts, view: task.Topo.NewView(), ctx: ctx, rec: opts.Recorder}
	if opts.Timeout > 0 {
		j.deadline = start.Add(opts.Timeout)
	}
	j.theta = opts.Theta
	if j.theta <= 0 {
		j.theta = 0.75
	}
	j.eval = opts.Evaluator
	if j.eval == nil {
		j.eval = routing.NewEvaluator(task.Topo)
	}
	j.maxNodes = opts.MaxStates
	if j.maxNodes <= 0 {
		j.maxNodes = 4_000_000
	}
	j.classify()
	if err := j.checkClassEncoding(); err != nil {
		return nil, err
	}

	initial := make([]byte, len(j.classMembers))
	if opts.InitialCounts != nil {
		// Executed blocks are canonical prefixes per type; translate to
		// per-class counts.
		for ty := range opts.InitialCounts {
			blocks := task.BlocksOfType(migration.ActionType(ty))
			for k := 0; k < opts.InitialCounts[ty]; k++ {
				initial[j.classOf[blocks[k]]]++
			}
		}
	}
	initialLast := core.NoLast
	if opts.InitialCounts != nil {
		initialLast = opts.InitialLast
	}
	plan, err := j.search(initial, initialLast, start)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// janusRun carries the search machinery.
type janusRun struct {
	task     *migration.Task
	opts     core.Options
	eval     *routing.Evaluator
	theta    float64
	deadline time.Time
	maxNodes int
	view     *topo.View
	ctx      context.Context

	classOf      []int   // block → symmetry class
	classMembers [][]int // class → member block IDs, ascending

	metrics core.Metrics
	rec     *obs.Recorder
}

// classify groups blocks into strict symmetry classes: two blocks are
// equivalent iff they have the same action type and their switches and
// circuits occupy structurally identical positions. Operating either
// member of a class first yields equivalent intermediate networks — the
// only pruning Janus has.
func (j *janusRun) classify() {
	t := j.task
	sigs := make(map[string]int)
	j.classOf = make([]int, len(t.Blocks))
	for i := range t.Blocks {
		sig := blockSignature(t, &t.Blocks[i])
		id, ok := sigs[sig]
		if !ok {
			id = len(sigs)
			sigs[sig] = id
			j.classMembers = append(j.classMembers, nil)
		}
		j.classOf[i] = id
		j.classMembers[id] = append(j.classMembers[id], i)
	}
	for _, m := range j.classMembers {
		sort.Ints(m)
	}
}

// checkClassEncoding rejects tasks whose symmetry classes exceed the
// byte-per-class state encoding (255 members) — far beyond any real
// migration's symmetry.
func (j *janusRun) checkClassEncoding() error {
	for c, m := range j.classMembers {
		if len(m) > 255 {
			return fmt.Errorf("baseline: Janus symmetry class %d has %d members, exceeding encoding limit", c, len(m))
		}
	}
	return nil
}

func blockSignature(t *migration.Task, b *migration.Block) string {
	var parts []string
	for _, s := range b.Switches {
		parts = append(parts, switchPositionSignature(t.Topo, s))
	}
	sort.Strings(parts)
	var cparts []string
	for _, c := range b.Circuits {
		cparts = append(cparts, circuitPositionSignature(t.Topo, t.Topo.Circuit(c)))
	}
	sort.Strings(cparts)
	return fmt.Sprintf("t%d|%s|%s", b.Type, strings.Join(parts, ","), strings.Join(cparts, ";"))
}

// switchPositionSignature captures a switch's structural position: role,
// generation, port budget, and the multiset of (neighbor, capacity,
// metric) tuples. Distinct neighbor identities make otherwise-similar
// switches inequivalent — the "little symmetry" property of real DCNs.
func switchPositionSignature(t *topo.Topology, id topo.SwitchID) string {
	s := t.Switch(id)
	var nb []string
	for _, cid := range s.Circuits() {
		c := t.Circuit(cid)
		nb = append(nb, fmt.Sprintf("%d@%g/%d", c.Other(id), c.Capacity, c.Metric))
	}
	sort.Strings(nb)
	return fmt.Sprintf("%s.g%d.p%d[%s]", s.Role, s.Generation, s.Ports, strings.Join(nb, " "))
}

func circuitPositionSignature(t *topo.Topology, c *topo.Circuit) string {
	a, b := c.A, c.B
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%d-%d@%g/%d", a, b, c.Capacity, c.Metric)
}

// nodeInfo records the best-known way to reach a state, for plan
// reconstruction.
type nodeInfo struct {
	g         float64
	prevKey   string
	prevBlock int
	closed    bool
}

type janusItem struct {
	key  string
	g    float64
	last migration.ActionType
	idx  int64
}

type janusHeap []janusItem

func (h janusHeap) Len() int { return len(h) }
func (h janusHeap) Less(i, k int) bool {
	if h[i].g != h[k].g {
		return h[i].g < h[k].g
	}
	return h[i].idx < h[k].idx
}
func (h janusHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *janusHeap) Push(x any)   { *h = append(*h, x.(janusItem)) }
func (h *janusHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// key encodes (per-class counts, last type).
func (j *janusRun) key(counts []byte, last migration.ActionType) string {
	return string(counts) + "|" + string(rune(last+2))
}

// countsOfKey decodes the per-class counts back out of a key.
func (j *janusRun) countsOfKey(key string) []byte {
	return []byte(key[:len(j.classMembers)])
}

// feasible materializes the state (first counts[c] members of every class,
// ascending block ID — legitimate because class members are symmetric) and
// checks it. Janus has no ordering-agnostic cache: every call pays a full
// rebuild and check.
func (j *janusRun) feasible(counts []byte) bool {
	j.metrics.Checks++
	if j.rec.Enabled() {
		checkStart := time.Now()
		defer func() { j.rec.CheckObserved(time.Since(checkStart)) }()
	}
	j.view.Reset()
	for c, n := range counts {
		for k := 0; k < int(n); k++ {
			j.task.Apply(j.view, j.classMembers[c][k])
		}
	}
	copts := routing.CheckOpts{Theta: j.theta, Split: j.opts.Split}
	return j.eval.Check(j.view, &j.task.Demands, copts).OK()
}

func (j *janusRun) search(initial []byte, initialLast migration.ActionType, start time.Time) (*core.Plan, error) {
	task := j.task
	span := j.rec.Span("janus.search")
	defer span.End()
	if !j.feasible(initial) {
		return nil, core.ErrInfeasible
	}

	nodes := make(map[string]*nodeInfo)
	var pq janusHeap
	idx := int64(0)
	push := func(counts []byte, last migration.ActionType, g float64, prevKey string, prevBlock int) {
		key := j.key(counts, last)
		if n, ok := nodes[key]; ok && n.g <= g {
			return
		}
		nodes[key] = &nodeInfo{g: g, prevKey: prevKey, prevBlock: prevBlock}
		idx++
		j.metrics.StatesCreated++
		j.rec.StateCreated()
		heap.Push(&pq, janusItem{key: key, g: g, last: last, idx: idx})
	}
	startKey := j.key(initial, initialLast)
	push(initial, initialLast, 0, "", -1)

	// Context and deadline are polled every pollInterval pops; the first
	// pop always polls, so an expired deadline or cancelled context trips
	// deterministically even on tiny searches.
	const pollInterval = 64
	pollCountdown := 1
	for pq.Len() > 0 {
		if j.metrics.StatesCreated > j.maxNodes {
			return nil, fmt.Errorf("%w: Janus exceeded %d states (%d symmetry classes over %d blocks)",
				core.ErrBudget, j.maxNodes, len(j.classMembers), len(task.Blocks))
		}
		pollCountdown--
		if pollCountdown <= 0 {
			pollCountdown = pollInterval
			if err := j.ctx.Err(); err != nil {
				return nil, fmt.Errorf("baseline: Janus cancelled after %d states: %w",
					j.metrics.StatesCreated, err)
			}
			if !j.deadline.IsZero() && time.Now().After(j.deadline) {
				return nil, fmt.Errorf("%w: Janus exceeded its time budget after %d states",
					core.ErrBudget, j.metrics.StatesCreated)
			}
		}
		it := heap.Pop(&pq).(janusItem)
		node := nodes[it.key]
		if node.closed || it.g > node.g {
			continue
		}
		node.closed = true
		j.metrics.StatesPopped++
		if j.rec.Enabled() {
			j.rec.StateExpanded()
			j.rec.OpenList(pq.Len())
		}
		counts := j.countsOfKey(it.key)

		done := 0
		for _, n := range counts {
			done += int(n)
		}
		if done == len(task.Blocks) {
			if !j.feasible(counts) {
				continue
			}
			seq := j.reconstruct(nodes, it.key, startKey)
			j.metrics.PlanningTime = time.Since(start)
			return &core.Plan{
				Task:     task,
				Sequence: seq,
				Runs:     runsOf(task, seq),
				Cost:     it.g,
				Metrics:  j.metrics,
			}, nil
		}

		// Boundary semantics (paper Eq. 4–6): switching action types
		// requires the state being left to be safe.
		boundaryChecked := false
		boundaryOK := false
		for c := range j.classMembers {
			if int(counts[c]) >= len(j.classMembers[c]) {
				continue
			}
			block := j.classMembers[c][counts[c]]
			ty := task.Blocks[block].Type
			if ty != it.last && it.last != core.NoLast {
				if !boundaryChecked {
					boundaryOK = j.feasible(counts)
					boundaryChecked = true
				}
				if !boundaryOK {
					continue
				}
			}
			unit := task.Types[ty].UnitCost
			if unit == 0 {
				unit = 1
			}
			step := unit
			if ty == it.last {
				step = j.opts.Alpha * unit
			}
			next := append([]byte(nil), counts...)
			next[c]++
			push(next, ty, it.g+step, it.key, block)
		}
	}
	return nil, core.ErrInfeasible
}

// reconstruct walks parent pointers back from the goal.
func (j *janusRun) reconstruct(nodes map[string]*nodeInfo, goal, start string) []int {
	var rev []int
	key := goal
	for key != start {
		n := nodes[key]
		if n == nil || n.prevBlock < 0 {
			break
		}
		rev = append(rev, n.prevBlock)
		key = n.prevKey
	}
	seq := make([]int, len(rev))
	for i := range rev {
		seq[i] = rev[len(rev)-1-i]
	}
	return seq
}
