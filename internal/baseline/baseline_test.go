package baseline

import (
	"errors"
	"math"
	"testing"

	"klotski/internal/core"
	"klotski/internal/demand"
	"klotski/internal/migration"
	"klotski/internal/topo"
)

// bridgeTask mirrors the core package's planning microcosm: parallel old
// (active) and new (inactive) bridges between src and dst.
func bridgeTask(t testing.TB, nOld, nNew int, oldCap, newCap, rate float64, srcPorts int) *migration.Task {
	t.Helper()
	tp := topo.New("bridges")
	src := tp.AddSwitch(topo.Switch{Name: "src", Role: topo.RoleRSW})
	dst := tp.AddSwitch(topo.Switch{Name: "dst", Role: topo.RoleEBB})
	task := &migration.Task{Name: "bridges", Topo: tp}
	d := task.AddType(migration.ActionTypeInfo{Name: "drain-old", Op: migration.Drain, Role: topo.RoleFADU})
	u := task.AddType(migration.ActionTypeInfo{Name: "undrain-new", Op: migration.Undrain, Role: topo.RoleFADU})
	for i := 0; i < nOld; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "old" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 1})
		tp.AddCircuit(src, s, oldCap)
		tp.AddCircuit(s, dst, oldCap)
		task.AddBlock(migration.Block{Type: d, Switches: []topo.SwitchID{s}})
	}
	for i := 0; i < nNew; i++ {
		s := tp.AddSwitch(topo.Switch{Name: "new" + string(rune('a'+i)), Role: topo.RoleFADU, Generation: 2})
		tp.SetSwitchActive(s, false)
		tp.AddCircuit(src, s, newCap)
		tp.AddCircuit(s, dst, newCap)
		task.AddBlock(migration.Block{Type: u, Switches: []topo.SwitchID{s}})
	}
	if srcPorts > 0 {
		tp.SetPorts(src, srcPorts)
	}
	task.Demands.Add(demand.Demand{Name: "d", Src: src, Dst: dst, Rate: rate})
	return task
}

func TestMRCProducesValidPlan(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.2, 4)
	p, err := PlanMRC(task, core.Options{})
	if err != nil {
		t.Fatalf("PlanMRC: %v", err)
	}
	if err := core.VerifyPlanFreeOrder(task, p.Sequence, core.Options{}); err != nil {
		t.Fatalf("MRC plan failed verification: %v", err)
	}
	if got := core.SequenceCost(task, p.Sequence, 0, core.NoLast); math.Abs(got-p.Cost) > 1e-9 {
		t.Fatalf("MRC cost %v, SequenceCost %v", p.Cost, got)
	}
}

func TestMRCCostAtLeastOptimal(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 1, 1.2, 4)
	opt, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mrc, err := PlanMRC(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mrc.Cost < opt.Cost-1e-9 {
		t.Fatalf("MRC cost %v below optimal %v", mrc.Cost, opt.Cost)
	}
}

func TestMRCGreedyIsSuboptimalSomewhere(t *testing.T) {
	// With slack everywhere, greedy max-residual keeps choosing undrains
	// and drains by capacity impact rather than batching by type; on this
	// instance it pays more type changes than the optimum.
	task := bridgeTask(t, 3, 3, 1, 1.2, 1.0, 4)
	opt, err := core.PlanAStar(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mrc, err := PlanMRC(task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mrc.Cost < opt.Cost {
		t.Fatalf("MRC %v cannot beat optimal %v", mrc.Cost, opt.Cost)
	}
	t.Logf("MRC cost %v vs optimal %v", mrc.Cost, opt.Cost)
}

func TestMRCRejectsTopologyChanging(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	task.TopologyChanging = true
	if _, err := PlanMRC(task, core.Options{}); !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestMRCInfeasible(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 1, 10, 0)
	if _, err := PlanMRC(task, core.Options{}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestJanusMatchesOptimal(t *testing.T) {
	for _, ports := range []int{0, 3, 4} {
		task := bridgeTask(t, 3, 3, 1, 1, 1.2, ports)
		opt, err := core.PlanAStar(task, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		j, err := PlanJanus(task, core.Options{})
		if err != nil {
			t.Fatalf("ports=%d PlanJanus: %v", ports, err)
		}
		if math.Abs(j.Cost-opt.Cost) > 1e-9 {
			t.Fatalf("ports=%d Janus cost %v != optimal %v", ports, j.Cost, opt.Cost)
		}
		if err := core.VerifyPlanFreeOrder(task, j.Sequence, core.Options{}); err != nil {
			t.Fatalf("Janus plan failed verification: %v", err)
		}
	}
}

func TestJanusWithAlpha(t *testing.T) {
	task := bridgeTask(t, 2, 3, 1, 1, 1.0, 4)
	opts := core.Options{Alpha: 0.5}
	opt, err := core.PlanAStar(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := PlanJanus(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.Cost-opt.Cost) > 1e-9 {
		t.Fatalf("Janus α-cost %v != optimal %v", j.Cost, opt.Cost)
	}
}

func TestJanusRejectsTopologyChanging(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	task.TopologyChanging = true
	if _, err := PlanJanus(task, core.Options{}); !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestJanusInfeasible(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 1, 10, 0)
	if _, err := PlanJanus(task, core.Options{}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestJanusBudget(t *testing.T) {
	task := bridgeTask(t, 3, 3, 1, 2, 0.5, 0)
	if _, err := PlanJanus(task, core.Options{MaxStates: 4}); !errors.Is(err, core.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestJanusSymmetryCollapse captures the paper's core contrast: on a fully
// symmetric task Janus's class-count states coincide with Klotski's
// type-count states, but one asymmetric capacity per bridge splits the
// symmetry classes into singletons and Janus's state space blows up to
// block subsets while Klotski's is unchanged.
func TestJanusSymmetryCollapse(t *testing.T) {
	symTask := bridgeTask(t, 3, 3, 1, 2, 0.5, 0)
	jSym, err := PlanJanus(symTask, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	asymTask := bridgeTask(t, 3, 3, 1, 2, 0.5, 0)
	// Perturb capacities so every bridge is structurally unique.
	for c := 0; c < asymTask.Topo.NumCircuits(); c++ {
		cid := topo.CircuitID(c)
		ck := asymTask.Topo.Circuit(cid)
		asymTask.Topo.SetCapacity(cid, ck.Capacity+0.001*float64(c))
	}
	jAsym, err := PlanJanus(asymTask, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jAsym.Metrics.StatesCreated <= 2*jSym.Metrics.StatesCreated {
		t.Errorf("asymmetry should blow up Janus's state space: %d vs %d states",
			jAsym.Metrics.StatesCreated, jSym.Metrics.StatesCreated)
	}

	// Klotski's type-count representation is oblivious to the asymmetry.
	kSym, err := core.PlanAStar(symTask, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kAsym, err := core.PlanAStar(asymTask, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if kAsym.Metrics.StatesCreated > 2*kSym.Metrics.StatesCreated {
		t.Errorf("Klotski should be insensitive to symmetry loss: %d vs %d states",
			kAsym.Metrics.StatesCreated, kSym.Metrics.StatesCreated)
	}
}

func TestMRCRespectsReplanningStart(t *testing.T) {
	task := bridgeTask(t, 2, 2, 1, 2, 0.5, 0)
	opts := core.Options{
		InitialCounts: []int{0, 1}, // one undrain already executed
		InitialLast:   migration.ActionType(1),
	}
	p, err := PlanMRC(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sequence) != 3 {
		t.Fatalf("replanned MRC sequence has %d actions, want 3", len(p.Sequence))
	}
	seen := map[int]bool{}
	for _, id := range p.Sequence {
		if seen[id] {
			t.Fatalf("block %d repeated", id)
		}
		seen[id] = true
		if id == task.BlocksOfType(migration.ActionType(1))[0] {
			t.Fatal("already-executed block replanned")
		}
	}
}
