#!/bin/sh
# benchguard.sh — run the planner guard benchmark and compare against the
# committed baseline (BENCH_planner.json at the repo root). Extra
# arguments pass through to cmd/benchguard, e.g.:
#
#   scripts/benchguard.sh                       # compare (bootstraps if missing)
#   scripts/benchguard.sh -update               # accept current performance
#   scripts/benchguard.sh -max-slowdown 1       # loosen for a noisy machine
#   scripts/benchguard.sh -min-prune-ratio 0.2  # require warm bound pruning
#   scripts/benchguard.sh -max-fleet-excess 0.5 # loosen the fleet makespan rule
#
# BENCHTIME overrides the iteration count (default 30x: fixed iterations
# rather than a time budget, so states/op is exactly reproducible; the
# committed baseline is sampled at 30x, so compare runs should match it —
# the large relational fixture needs the extra iterations to average out
# single-run noise against its ±10–15% invariants).
set -eu
cd "$(dirname "$0")/.."

go test -run '^$' -bench 'BenchmarkPlannerGuard|BenchmarkCheckDemandDelta|BenchmarkFleetGuard' -benchtime "${BENCHTIME:-30x}" . |
	go run ./cmd/benchguard -baseline BENCH_planner.json "$@"
