// Package klotski is an open reproduction of "Klotski: Efficient and Safe
// Network Migration of Large Production Datacenters" (SIGCOMM 2023): a
// planner that turns a datacenter-network migration — adding, removing, or
// swapping switches and circuits at regional scale — into a minimum-cost
// ordered sequence of drain/undrain actions whose every observable
// intermediate state satisfies traffic-demand and physical-port safety
// constraints.
//
// # Model
//
// A Topology is an immutable universe of typed switches (RSW, FSW, SSW,
// FADU, FAUU, MA, EB, DR, EBB) and circuits covering the network before,
// during, and after the migration; activity flags record what carries
// traffic. A Task groups the elements to operate into operation blocks,
// each with an action type (equipment kind × drain/undrain). A Plan orders
// the blocks; consecutive same-type actions form runs executed in parallel
// by field crews, and plan cost is (essentially) the number of runs —
// f_cost(x) = 1 + α(x−1) per run of length x.
//
// Safety is checked with a macro-scale ECMP model: every demand must route,
// and no circuit may exceed the utilization bound θ, at every run boundary
// and at the end of the plan (paper Eq. 4–6).
//
// # Planning
//
//	task := ... // from a generator, an NPD document, or built by hand
//	plan, err := klotski.PlanAStar(task, klotski.Options{Theta: 0.75})
//
// PlanAStar uses the A* search planner with the paper's compact
// ordering-agnostic state representation, cached satisfiability checking,
// and an admissible domain-specific heuristic; PlanDP is the
// dynamic-programming planner of §4.3, and PlanMRC / PlanJanus are the
// evaluation baselines. All four return identical Plan values.
//
// # Scenarios and the evaluation suite
//
// The gen-layer entry points (BuildRegion, HGRIDScenario, ForkliftScenario,
// DMAGScenario, Suite) synthesize Meta-style regions and the paper's three
// production migration types; Suite("A".."E", "E-DMAG", "E-SSW") builds the
// Table-3 evaluation cases at any scale. NPD documents (LoadNPD,
// RunPipeline) drive the same machinery declaratively, and the simulator
// (NewExecutor) replays plans with asynchronous drains, demand surges, and
// failures.
package klotski

import (
	"context"
	"io"

	"klotski/internal/audit"
	"klotski/internal/baseline"
	"klotski/internal/bound"
	"klotski/internal/core"
	"klotski/internal/ctrl"
	"klotski/internal/demand"
	"klotski/internal/gen"
	"klotski/internal/migration"
	"klotski/internal/npd"
	"klotski/internal/obs"
	"klotski/internal/pipeline"
	"klotski/internal/report"
	"klotski/internal/routing"
	"klotski/internal/sched"
	"klotski/internal/sim"
	"klotski/internal/topo"
)

// Topology model.
type (
	// Topology is the immutable switch/circuit universe plus base activity.
	Topology = topo.Topology
	// Switch is one network element.
	Switch = topo.Switch
	// Circuit is a link between two switches with capacity and routing metric.
	Circuit = topo.Circuit
	// View is a mutable activity overlay used to evaluate hypothetical states.
	View = topo.View
	// Role identifies a switch's layer (RSW … EBB).
	Role = topo.Role
	// SwitchID indexes switches within a topology.
	SwitchID = topo.SwitchID
	// CircuitID indexes circuits within a topology.
	CircuitID = topo.CircuitID
	// TopologyStats summarizes a topology or view.
	TopologyStats = topo.Stats
)

// Switch roles, bottom-up through the DCN (paper §2.1).
const (
	RoleRSW  = topo.RoleRSW
	RoleFSW  = topo.RoleFSW
	RoleSSW  = topo.RoleSSW
	RoleFADU = topo.RoleFADU
	RoleFAUU = topo.RoleFAUU
	RoleMA   = topo.RoleMA
	RoleEB   = topo.RoleEB
	RoleDR   = topo.RoleDR
	RoleEBB  = topo.RoleEBB
)

// NewTopology returns an empty named topology.
func NewTopology(name string) *Topology { return topo.New(name) }

// MergeTopologies combines two universes into one (prefixing names),
// returning the merged topology and the ID offsets applied to b's switches
// and circuits. Used to plan multi-region migrations jointly (§2.2).
func MergeTopologies(name, prefixA string, a *Topology, prefixB string, b *Topology) (*Topology, SwitchID, CircuitID) {
	return topo.Merge(name, prefixA, a, prefixB, b)
}

// ParseRole converts a role name such as "SSW" back to a Role.
func ParseRole(s string) (Role, error) { return topo.ParseRole(s) }

// Traffic demands.
type (
	// Demand is an aggregate (source, destination, rate) requirement.
	Demand = demand.Demand
	// DemandSet is a collection of demands.
	DemandSet = demand.Set
	// Forecast models organic demand growth per migration step (§7.1).
	Forecast = demand.Forecast
	// Surge models an unexpected traffic spike (§7.2).
	Surge = demand.Surge
)

// Migration tasks.
type (
	// Task is a migration-planning problem: topology universe, operation
	// blocks with interned action types, and demands.
	Task = migration.Task
	// Block is one operation block, operated atomically.
	Block = migration.Block
	// ActionType identifies a kind of action within a task.
	ActionType = migration.ActionType
	// ActionTypeInfo describes an interned action type.
	ActionTypeInfo = migration.ActionTypeInfo
	// OpType is the drain/undrain direction of an action.
	OpType = migration.OpType
	// TaskStats summarizes a task's scale (Table 1 columns).
	TaskStats = migration.TaskStats
)

// Operation directions.
const (
	Drain   = migration.Drain
	Undrain = migration.Undrain
)

// Reblock merges or splits a task's operation blocks by the given factor
// (Fig. 11's organization-policy sweep).
func Reblock(t *Task, factor float64) (*Task, error) { return migration.Reblock(t, factor) }

// SymmetryGranularity re-blocks a task at strict symmetry-block
// granularity — the Janus baseline's granularity and the "w/o OB" ablation.
func SymmetryGranularity(t *Task) *Task { return migration.SymmetryGranularity(t) }

// StrictSymmetryBlocks partitions switches into Janus-style symmetry
// blocks: equivalent iff they share role, generation, and exact
// (neighbor, capacity) multisets.
func StrictSymmetryBlocks(t *Topology, switches []SwitchID) [][]SwitchID {
	return migration.StrictSymmetryBlocks(t, switches)
}

// Planners.
type (
	// Options parameterizes planning (θ, α, ablations, budgets, replanning).
	Options = core.Options
	// Plan is an ordered, safe, minimum-cost migration plan.
	Plan = core.Plan
	// PlanRun is a maximal same-type subsequence of a plan.
	PlanRun = core.Run
	// Metrics reports planner effort.
	Metrics = core.Metrics
	// BoundEngine is the reusable lower-bound engine: an admissible
	// relaxation plus Benders-style no-good cuts learned from infeasible
	// boundary checks, cached across planner invocations and drift replans
	// over the same structure. Wire one via Options.Bound to enable
	// bound-guided pruning (A* dead-state discards, DP dominance skips)
	// and warm-started certified optimality gaps.
	BoundEngine = bound.Engine
)

// Planning errors, matchable with errors.Is.
var (
	ErrInfeasible  = core.ErrInfeasible
	ErrBudget      = core.ErrBudget
	ErrUnsupported = core.ErrUnsupported
	// ErrAudit means the planner's output failed the independent
	// post-planning audit — a planner bug caught before the plan could
	// reach an operator.
	ErrAudit = core.ErrAudit
)

// NoLast marks "no action executed yet" in replanning options.
const NoLast = core.NoLast

// NewBoundEngine builds a lower-bound engine matched to the task's action
// structure (per-type block totals, unit costs, α). Assign it to
// Options.Bound; the same engine may be shared across successive planner
// runs over the same structure — a drift replan with changed demands keeps
// the structural cuts and re-proves the rest — and across planner kinds
// (A* and DP runs feed the same cut store). Not safe for concurrent
// planner runs.
func NewBoundEngine(task *Task, opts Options) *BoundEngine {
	return core.NewBoundEngine(task, opts)
}

// CompletionLowerBound returns an admissible lower bound on the cost to
// finish the migration from the state described by per-type finished
// counts: the capped-run relaxation of Eq. 1 that ignores safety
// constraints. It never exceeds the true optimal completion cost, so it
// anchors certified optimality gaps for external incumbents (e.g. the
// control loop's remaining-suffix cost).
func CompletionLowerBound(task *Task, counts []int, last ActionType, alpha float64, maxRun int) float64 {
	return core.CompletionLowerBound(task, counts, last, alpha, maxRun)
}

// WorkersAdaptive, assigned to Options.Workers, selects the adaptive
// worker policy: lane counts start at the runtime's parallelism and are
// resized at run time from observed shard-contention, speculative-waste,
// and cache hit-rate counters (A* speculative warming is switched off when
// it mispredicts). Decisions are traced through the observability registry
// (planner.adaptive_decisions, planner.adaptive_lanes,
// planner.adaptive_warm_offs) and never change plan content: plans stay
// byte-identical to the serial planner's for any counter history.
const WorkersAdaptive = core.WorkersAdaptive

// PlanAStar finds a minimum-cost safe migration plan with the A* search
// planner (paper §4.4) — the production configuration. Set Options.Workers
// > 1 to resolve satisfiability checks on concurrent worker lanes, or to
// WorkersAdaptive to let the runtime counters size them; the emitted plan
// is byte-identical at every worker setting.
func PlanAStar(task *Task, opts Options) (*Plan, error) { return core.PlanAStar(task, opts) }

// PlanAStarParallel is PlanAStar with batch-expansion frontier warming: at
// each expansion the feasibility verdicts the search needs next (the
// expanded node, its successors, and the top of the open heap) are resolved
// concurrently on per-worker evaluator forks and committed into the shared
// satisfiability cache (0 workers picks GOMAXPROCS, WorkersAdaptive the
// adaptive policy). Plans and costs are byte-identical to PlanAStar.
// Equivalent to setting Options.Workers.
func PlanAStarParallel(task *Task, opts Options, workers int) (*Plan, error) {
	return core.PlanAStarParallel(task, opts, workers)
}

// PlanDP finds a minimum-cost safe plan with the DP-based planner (§4.3).
// Set Options.Workers > 1 to compute the DP table in parallel wavefront
// layers; the emitted plan is byte-identical at every worker count.
func PlanDP(task *Task, opts Options) (*Plan, error) { return core.PlanDP(task, opts) }

// PlanDPParallel is PlanDP with the memo table computed bottom-up in
// parallel wavefront layers across the given number of workers (0 picks
// GOMAXPROCS, WorkersAdaptive the adaptive policy). Plans and costs are
// byte-identical to PlanDP. Equivalent to setting Options.Workers.
func PlanDPParallel(task *Task, opts Options, workers int) (*Plan, error) {
	return core.PlanDPParallel(task, opts, workers)
}

// PlanMRC plans greedily by maximizing minimum residual capacity — the
// MRC baseline of the evaluation (§6.1). Plans are safe but not optimal.
func PlanMRC(task *Task, opts Options) (*Plan, error) { return baseline.PlanMRC(task, opts) }

// PlanJanus plans with a Janus-style symmetry planner — the second
// evaluation baseline. It finds optimal plans when it finishes, but its
// state space is pruned only by topological symmetry, so on
// production-like (asymmetric) topologies it grows exponentially and
// returns ErrBudget; it also rejects topology-changing migrations.
func PlanJanus(task *Task, opts Options) (*Plan, error) { return baseline.PlanJanus(task, opts) }

// Anytime planning: every planner has a Context variant that honors
// cancellation and, on budget exhaustion or cancellation, returns an
// *Interrupted error carrying a Checkpoint to continue from.
type (
	// Checkpoint is the saved state of an interrupted planning run — the
	// paper's §7.2 hard-budget regime, where a budget overrun must not
	// throw the search away. Its Counts/Partial fields describe the best
	// safe partial sequence explored so far.
	Checkpoint = core.Checkpoint
	// Interrupted is returned (as *Interrupted, matchable with errors.As)
	// when a planner stops early; it wraps ErrBudget or the context error
	// and carries the Checkpoint.
	Interrupted = core.Interrupted
)

// ResumePlan continues an interrupted search under a fresh budget envelope.
// No state is re-expanded and the eventual plan is identical to what an
// uninterrupted run would have produced.
func ResumePlan(ctx context.Context, cp *Checkpoint, opts Options) (*Plan, error) {
	return core.Resume(ctx, cp, opts)
}

// PlanAStarContext is PlanAStar with cooperative cancellation.
func PlanAStarContext(ctx context.Context, task *Task, opts Options) (*Plan, error) {
	return core.PlanAStarContext(ctx, task, opts)
}

// PlanAStarParallelContext is PlanAStarParallel with cooperative
// cancellation.
func PlanAStarParallelContext(ctx context.Context, task *Task, opts Options, workers int) (*Plan, error) {
	return core.PlanAStarParallelContext(ctx, task, opts, workers)
}

// PlanDPContext is PlanDP with cooperative cancellation.
func PlanDPContext(ctx context.Context, task *Task, opts Options) (*Plan, error) {
	return core.PlanDPContext(ctx, task, opts)
}

// PlanDPParallelContext is PlanDPParallel with cooperative cancellation.
func PlanDPParallelContext(ctx context.Context, task *Task, opts Options, workers int) (*Plan, error) {
	return core.PlanDPParallelContext(ctx, task, opts, workers)
}

// PlanMRCContext is PlanMRC with cooperative cancellation. The baselines
// stop cleanly on budget exhaustion (ErrBudget) but do not checkpoint.
func PlanMRCContext(ctx context.Context, task *Task, opts Options) (*Plan, error) {
	return baseline.PlanMRCContext(ctx, task, opts)
}

// PlanJanusContext is PlanJanus with cooperative cancellation.
func PlanJanusContext(ctx context.Context, task *Task, opts Options) (*Plan, error) {
	return baseline.PlanJanusContext(ctx, task, opts)
}

// Independent plan auditing: a defense-in-depth verifier that replays a
// sequence step by step against a pristine serial evaluator, sharing none
// of the planners' fast paths (caches, incremental evaluation, worker
// lanes). Every planner runs it automatically as a post-pass unless
// Options.SkipAudit is set; Plan.Audit carries the report.
type (
	// AuditReport is the structured result of an independent plan audit.
	AuditReport = audit.Report
	// AuditStep records one boundary-state check of an audit replay.
	AuditStep = audit.Step
)

// AuditPlan independently audits a complete plan sequence from the
// migration's initial state. freeOrder permits same-type blocks out of
// canonical order (the baseline planners' output). The report's Passed
// field carries the verdict; the returned error only signals malformed
// inputs.
func AuditPlan(task *Task, seq []int, opts Options, freeOrder bool) (*AuditReport, error) {
	return core.AuditSequence(task, seq, opts, freeOrder)
}

// AuditResumedPlan audits a plan that continues an already-executed
// prefix of blocks (the control loop's mid-migration state).
func AuditResumedPlan(task *Task, seq, executed []int, opts Options, freeOrder bool) (*AuditReport, error) {
	return core.AuditResumed(task, seq, executed, opts, freeOrder)
}

// AuditPartialPlan audits a safe partial sequence — a checkpoint's prefix
// — whose endpoint is checked as a final observable state without
// requiring the migration to be complete.
func AuditPartialPlan(task *Task, seq []int, opts Options, freeOrder bool) (*AuditReport, error) {
	return core.AuditPartial(task, seq, opts, freeOrder)
}

// VerifyPlan independently audits a plan: canonical ordering plus safety of
// the initial state, every run boundary, and the final state.
func VerifyPlan(task *Task, seq []int, opts Options) error {
	return core.VerifyPlan(task, seq, opts)
}

// VerifyPlanFreeOrder audits a plan that may operate same-type blocks out
// of canonical order (the baseline planners' output).
func VerifyPlanFreeOrder(task *Task, seq []int, opts Options) error {
	return core.VerifyPlanFreeOrder(task, seq, opts)
}

// CheckState verifies a single network state given per-type progress counts.
func CheckState(task *Task, counts []int, opts Options) error {
	return core.CheckState(task, counts, opts)
}

// SequenceCost computes the generalized cost (Eq. 1 + §5) of a block
// sequence.
func SequenceCost(task *Task, seq []int, alpha float64, initialLast ActionType) float64 {
	return core.SequenceCost(task, seq, alpha, initialLast)
}

// SequenceCostCapped is SequenceCost under Options.MaxRunLength semantics
// (runs force-split every maxRun actions).
func SequenceCostCapped(task *Task, seq []int, alpha float64, initialLast ActionType, maxRun, initialRun int) float64 {
	return core.SequenceCostCapped(task, seq, alpha, initialLast, maxRun, initialRun)
}

// RunsOf groups a block sequence into runs, splitting same-type runs every
// maxRun actions when maxRun > 0.
func RunsOf(task *Task, seq []int, maxRun int) []PlanRun {
	return core.RunsOf(task, seq, maxRun)
}

// Routing / safety evaluation.
type (
	// Evaluator places traffic with ECMP and checks safety constraints.
	Evaluator = routing.Evaluator
	// CheckOpts parameterizes a safety check (θ, funneling headroom).
	CheckOpts = routing.CheckOpts
	// Violation describes a constraint failure.
	Violation = routing.Violation
	// EvalResult summarizes a full traffic placement.
	EvalResult = routing.Result
	// SplitMode selects ECMP or capacity-weighted (WCMP) traffic splitting.
	SplitMode = routing.SplitMode
	// PathDAG is the ECMP forwarding structure of one (src, dst) pair,
	// from Evaluator.Trace.
	PathDAG = routing.PathDAG
)

// Traffic-splitting policies. SplitCapacityWeighted models the temporary
// routing configurations of paper §7.1 for asymmetric parallel paths.
const (
	SplitEqual            = routing.SplitEqual
	SplitCapacityWeighted = routing.SplitCapacityWeighted
)

// NewEvaluator returns a routing evaluator for views over t.
func NewEvaluator(t *Topology) *Evaluator { return routing.NewEvaluator(t) }

// ExpandTouched closes a touched-element set over the incidence relations
// Evaluator.CheckDelta's invalidation rule relies on: endpoints of touched
// circuits join the switch set, circuits incident to touched switches join
// the circuit set.
func ExpandTouched(t *Topology, sw []SwitchID, ck []CircuitID) ([]SwitchID, []CircuitID) {
	return routing.ExpandTouched(t, sw, ck)
}

// Generators and the Table-3 suite.
type (
	// RegionParams describes a Meta-style region to synthesize.
	RegionParams = gen.RegionParams
	// FabricParams describes one building's fabric.
	FabricParams = gen.FabricParams
	// HGRIDParams describes the fabric-aggregation layer.
	HGRIDParams = gen.HGRIDParams
	// Region is a built topology plus structural references.
	Region = gen.Region
	// Scenario is a ready-to-plan migration over a generated region.
	Scenario = gen.Scenario
	// DemandSpec parameterizes synthetic demand generation.
	DemandSpec = gen.DemandSpec
	// HGRIDScenarioParams parameterizes the HGRID V1→V2 migration.
	HGRIDScenarioParams = gen.HGRIDScenarioParams
	// ForkliftParams parameterizes the SSW forklift migration.
	ForkliftParams = gen.ForkliftParams
	// DMAGParams parameterizes the DMAG layer-insertion migration.
	DMAGParams = gen.DMAGParams
	// JointParams parameterizes a joint two-region migration.
	JointParams = gen.JointParams
)

// BuildRegion constructs a generation-1 region topology.
func BuildRegion(p RegionParams) *Region { return gen.BuildRegion(p) }

// HGRIDScenario builds an HGRID V1→V2 migration task (paper §2.4, Fig. 3a).
func HGRIDScenario(name string, p HGRIDScenarioParams) (*Scenario, error) {
	return gen.HGRIDScenario(name, p)
}

// ForkliftScenario builds an SSW forklift migration task (Fig. 3b).
func ForkliftScenario(name string, p ForkliftParams) (*Scenario, error) {
	return gen.ForkliftScenario(name, p)
}

// DMAGScenario builds a DMAG layer-insertion migration task (Fig. 3c).
func DMAGScenario(name string, p DMAGParams) (*Scenario, error) {
	return gen.DMAGScenario(name, p)
}

// Suite builds one of the Table-3 evaluation scenarios ("A".."E", "E-DMAG",
// "E-SSW") at the given scale (1 = paper-sized).
func Suite(name string, scale float64) (*Scenario, error) { return gen.Suite(name, scale) }

// SuiteParams returns a suite topology's region parameters at the given
// scale, for building derived scenarios.
func SuiteParams(name string, scale float64) (RegionParams, error) {
	return gen.SuiteParams(name, scale)
}

// JointScenario merges two regions' HGRID migrations into one coupled
// planning problem (paper §2.2, "Consider multiple DCs").
func JointScenario(name string, p JointParams) (*Scenario, error) {
	return gen.JointScenario(name, p)
}

// SuiteNames lists the scenario names accepted by Suite, in Table-3 order.
func SuiteNames() []string { return gen.SuiteNames() }

// NPD format and EDP-Lite pipeline.
type (
	// NPDDocument is a declarative region + migration description (§5).
	NPDDocument = npd.Document
	// PlanDocument is the serialized ordered-phases planner output.
	PlanDocument = npd.PlanDocument
	// PlanPhase is one ordered phase of a plan document.
	PlanPhase = npd.Phase
	// PipelineConfig parameterizes a pipeline run.
	PipelineConfig = pipeline.Config
	// PipelineResult is the output of a pipeline run.
	PipelineResult = pipeline.Result
	// PlannerName selects the pipeline's planning algorithm.
	PlannerName = pipeline.Planner
)

// Pipeline planner names.
const (
	PlannerAStar = pipeline.PlannerAStar
	PlannerDP    = pipeline.PlannerDP
	PlannerMRC   = pipeline.PlannerMRC
	PlannerJanus = pipeline.PlannerJanus
)

// LoadNPD reads and validates an NPD document from JSON.
func LoadNPD(r io.Reader) (*NPDDocument, error) { return npd.Decode(r) }

// RunPipeline executes the EDP-Lite pipeline on an NPD document: build the
// scenario, plan, audit, and emit ordered topology phases.
func RunPipeline(doc *NPDDocument, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.Run(doc, cfg)
}

// RunPipelineContext is RunPipeline with cooperative cancellation threaded
// through to the planner and any forecast-driven replans.
func RunPipelineContext(ctx context.Context, doc *NPDDocument, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.RunContext(ctx, doc, cfg)
}

// RunPipelineTask executes the pipeline on an already-built task.
func RunPipelineTask(task *Task, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.RunTask(task, cfg)
}

// RunPipelineTaskContext is RunPipelineTask with cooperative cancellation.
func RunPipelineTaskContext(ctx context.Context, task *Task, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.RunTaskContext(ctx, task, cfg)
}

// ReplanMigration continues a partially executed migration, optionally with
// a new demand set (§7.1–7.2).
func ReplanMigration(task *Task, executed []int, newDemands *DemandSet, cfg PipelineConfig) (*Plan, error) {
	return pipeline.Replan(task, executed, newDemands, cfg)
}

// ReplanMigrationContext is ReplanMigration with cooperative cancellation.
func ReplanMigrationContext(ctx context.Context, task *Task, executed []int, newDemands *DemandSet, cfg PipelineConfig) (*Plan, error) {
	return pipeline.ReplanContext(ctx, task, executed, newDemands, cfg)
}

// ReplanAfterOutage continues a partially executed migration after
// out-of-band maintenance took switches down (§7.2).
func ReplanAfterOutage(task *Task, executed []int, down []SwitchID, cfg PipelineConfig) (*Plan, error) {
	return pipeline.ReplanAfterOutage(task, executed, down, cfg)
}

// ReplanAfterOutageContext is ReplanAfterOutage with cooperative
// cancellation.
func ReplanAfterOutageContext(ctx context.Context, task *Task, executed []int, down []SwitchID, cfg PipelineConfig) (*Plan, error) {
	return pipeline.ReplanAfterOutageContext(ctx, task, executed, down, cfg)
}

// BuildPlanDocument converts a plan into its ordered-phases document.
func BuildPlanDocument(task *Task, plan *Plan, opts Options) (*PlanDocument, error) {
	return npd.BuildPlanDocument(task, plan, opts)
}

// WriteTimeline renders a plan document as a phase-per-line text timeline
// with utilization bars.
func WriteTimeline(w io.Writer, doc *PlanDocument) error { return report.Timeline(w, doc) }

// WriteMargins renders the per-phase safety margins and flags the tightest
// phase.
func WriteMargins(w io.Writer, doc *PlanDocument) error { return report.Margins(w, doc) }

// Execution simulation.
type (
	// SimExecutor replays plans against the routing model.
	SimExecutor = sim.Executor
	// SimOptions parameterizes a simulation (asynchrony, surges, failures).
	SimOptions = sim.Options
	// SimReport summarizes an execution.
	SimReport = sim.Report
	// SimCampaignReport aggregates a Monte Carlo asynchrony campaign.
	SimCampaignReport = sim.CampaignReport
	// SimGranularity controls intra-run asynchrony.
	SimGranularity = sim.Granularity
)

// Simulation granularities.
const (
	GranularityRun     = sim.GranularityRun
	GranularityBlock   = sim.GranularityBlock
	GranularityCircuit = sim.GranularityCircuit
)

// NewExecutor returns a plan executor for the task.
func NewExecutor(task *Task) *SimExecutor { return sim.NewExecutor(task) }

// Chaos: fault schedules and the live-network World driven by the
// fault-tolerant control loop (§7.2's operating regime).
type (
	// Fault is one scheduled fault: switch outage, circuit flap, demand
	// surge, or transient action failure.
	Fault = sim.Fault
	// FaultKind enumerates the injectable fault classes.
	FaultKind = sim.FaultKind
	// FaultSchedule is a fault train fired as execution progresses.
	FaultSchedule = sim.Schedule
	// FaultScheduleOptions parameterizes RandomFaultSchedule.
	FaultScheduleOptions = sim.ScheduleOptions
	// World is the live network a controller drives: real topology, real
	// demand, and a fault schedule the plan's model may drift from.
	World = sim.World
)

// Injectable fault classes.
const (
	FaultSwitchDown  = sim.FaultSwitchDown
	FaultCircuitFlap = sim.FaultCircuitFlap
	FaultSurge       = sim.FaultSurge
	FaultTransient   = sim.FaultTransient

	// Telemetry faults degrade the controller's demand-observation channel
	// without touching the network itself.
	FaultTelemetryStale   = sim.FaultTelemetryStale
	FaultTelemetryDrop    = sim.FaultTelemetryDrop
	FaultTelemetryCorrupt = sim.FaultTelemetryCorrupt
)

// ErrTransient marks an action failure expected to clear on retry,
// matchable with errors.Is.
var ErrTransient = sim.ErrTransient

// ErrTelemetry marks a failed demand observation (dropped collector),
// matchable with errors.Is.
var ErrTelemetry = sim.ErrTelemetry

// RandomFaultSchedule draws a seeded fault train targeting only equipment
// the migration does not operate and that carries no demand endpoint.
func RandomFaultSchedule(task *Task, seed int64, opts FaultScheduleOptions) FaultSchedule {
	return sim.RandomSchedule(task, seed, opts)
}

// NewWorld builds a live-network world over the task's initial topology
// and demands, with the given fault schedule.
func NewWorld(task *Task, schedule FaultSchedule, seed int64) *World {
	return sim.NewWorld(task, schedule, seed)
}

// Fault-tolerant control loop: plan → execute → observe → replan.
type (
	// ControlOptions parameterizes a control-loop run (retry budget,
	// backoff, replan budget, journal).
	ControlOptions = ctrl.Options
	// ControlOutcome reports what one control-loop run did.
	ControlOutcome = ctrl.Outcome
	// ControlJournal is the crash-safe write-ahead journal of executed
	// actions.
	ControlJournal = ctrl.Journal
	// JournalEntry is one journal record (begin, done, or replan).
	JournalEntry = ctrl.Entry
	// ChaosCampaignOptions parameterizes a Monte Carlo chaos campaign.
	ChaosCampaignOptions = ctrl.CampaignOptions
	// ChaosCampaignReport aggregates a chaos campaign's outcomes.
	ChaosCampaignReport = ctrl.CampaignReport
)

// RunControlLoop drives the migration to completion against the live
// world, retrying transient failures with capped exponential backoff and
// replanning whenever the environment drifts from the plan's model.
func RunControlLoop(ctx context.Context, task *Task, world *World, opts ControlOptions) (*ControlOutcome, error) {
	return ctrl.Run(ctx, task, world, opts)
}

// ChaosCampaign runs the control loop against many seeded random fault
// schedules and aggregates completion rate, retries, replans, and
// boundary-violation counts. Set ChaosCampaignOptions.Pool to run the
// seeds concurrently under a shared worker pool; the report stays
// byte-identical to the serial campaign's.
func ChaosCampaign(ctx context.Context, task *Task, opts ChaosCampaignOptions) (*ChaosCampaignReport, error) {
	return ctrl.Campaign(ctx, task, opts)
}

// Fleet-scale planning: a process-wide work-stealing worker pool shared
// by concurrent plans, with admission control and priority preemption.
type (
	// WorkerPool is the shared pool. Plans attach via Options.Sched
	// (a registered PoolClient); every plan stays byte-identical to its
	// serial result at any pool size, share, or preemption point.
	WorkerPool = sched.Pool
	// PoolClient is one plan's handle on the pool.
	PoolClient = sched.Client
	// PoolClientOptions sets a registration's priority and share bounds.
	PoolClientOptions = sched.ClientOptions
	// FleetMember is one fabric's planning job in a fleet run.
	FleetMember = ctrl.FleetMember
	// FleetOptions parameterizes a fleet run.
	FleetOptions = ctrl.FleetOptions
	// FleetReport aggregates a fleet run.
	FleetReport = ctrl.FleetReport
	// FleetMemberReport is one fleet member's outcome.
	FleetMemberReport = ctrl.FleetMemberReport
	// FleetPlanner selects a fleet member's planning algorithm.
	FleetPlanner = ctrl.Planner
	// BoundStore shares structural lower-bound cuts across engines (and
	// fleet members) planning the same fabric structure; see
	// BoundEngine.Attach.
	BoundStore = bound.Store
)

// Fleet planner names (the checkpoint-resumable core planners).
const (
	FleetPlannerAStar = ctrl.PlannerAStar
	FleetPlannerDP    = ctrl.PlannerDP
)

// NewWorkerPool starts a shared planning worker pool (0 workers selects
// GOMAXPROCS). Close it when the fleet is done.
func NewWorkerPool(workers int, rec *ObsRecorder) *WorkerPool {
	return sched.NewPool(workers, rec)
}

// PlanFleet plans every member concurrently under the shared pool with
// admission control, cross-member structural-cut sharing, and priority
// preemption (preempted members checkpoint and resume byte-identically).
func PlanFleet(ctx context.Context, members []FleetMember, opts FleetOptions) (*FleetReport, error) {
	return ctrl.Fleet(ctx, members, opts)
}

// NewBoundStore returns an empty cross-plan structural-cut store; attach
// it to engines via BoundEngine.Attach (PlanFleet wires one automatically
// unless FleetOptions.NoSharedCuts is set).
func NewBoundStore() *BoundStore { return bound.NewStore() }

// Observability: typed instruments, a process-wide registry with expvar
// and JSON-snapshot export, ring-buffered span traces, and the nil-safe
// Recorder the planners accept via Options.Recorder.
type (
	// ObsRecorder is the typed hot-path recorder; a nil *ObsRecorder is
	// the no-op default.
	ObsRecorder = obs.Recorder
	// ObsRegistry is a namespace of counters, gauges, histograms, derived
	// values, and trace streams.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time JSON-marshalable registry export.
	ObsSnapshot = obs.Snapshot
)

// NewObsRecorder returns a recorder publishing into reg (nil selects the
// process-wide default registry). Wire it via Options.Recorder and
// ControlOptions.Recorder.
func NewObsRecorder(reg *ObsRegistry) *ObsRecorder { return obs.NewRecorder(reg) }

// NewObsRegistry returns an empty observability registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// DefaultObsRegistry returns the process-wide registry used by the CLI's
// -stats-out and -debug-addr exports.
func DefaultObsRegistry() *ObsRegistry { return obs.Default() }

// Durable-state errors, matchable with errors.Is.
var (
	// ErrJournalExists means NewControlJournal found a journal already at
	// the path; use OverwriteControlJournal or OpenControlJournal.
	ErrJournalExists = ctrl.ErrJournalExists
	// ErrJournalCorrupt means a journal holds damage somewhere other than
	// its final record — not the torn tail of a crash, so the log cannot
	// be trusted for recovery.
	ErrJournalCorrupt = ctrl.ErrCorrupt
)

// NewControlJournal creates a write-ahead journal at path, refusing with
// ErrJournalExists if a file is already there — a prior run's journal is
// the only record of what was executed and must not be clobbered
// silently.
func NewControlJournal(path string) (*ControlJournal, error) { return ctrl.NewJournal(path) }

// OverwriteControlJournal creates a journal at path, replacing any
// existing file — the explicit opt-in NewControlJournal refuses to
// perform silently.
func OverwriteControlJournal(path string) (*ControlJournal, error) {
	return ctrl.NewJournalOverwrite(path)
}

// OpenControlJournal opens an existing journal for crash recovery: replay
// its committed prefix, then append.
func OpenControlJournal(path string) (*ControlJournal, error) { return ctrl.OpenJournal(path) }

// ReadControlJournal reads a journal's entries, tolerating a damaged
// final record (crash mid-append) but failing with ErrJournalCorrupt on
// damage anywhere else.
func ReadControlJournal(path string) ([]JournalEntry, error) { return ctrl.ReadJournal(path) }
