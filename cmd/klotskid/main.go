// Command klotskid is the planning-as-a-service daemon: the paper's §5
// production pipeline (EDP-Lite) runs the planner as a long-lived
// service that operators submit migration requests to, and klotskid is
// that service for this codebase.
//
//	klotskid -dir /var/lib/klotskid -addr localhost:8080 [-ops-addr localhost:6060]
//	         [-pool-workers N] [-leg-states N] [-admit-wait 2s]
//	         [-theta 0.75] [-alpha 0.1] [-maxrun N]
//
// The HTTP/JSON API (see internal/serve):
//
//	POST   /v1/jobs              submit {npd, planner, theta, priority, …} → job ID
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         poll status (state, legs, incumbent, gap)
//	GET    /v1/jobs/{id}/stream  NDJSON anytime stream as the plan improves
//	GET    /v1/jobs/{id}/plan    the audited final plan document
//	GET    /v1/jobs/{id}/checkpoint  latest sealed checkpoint envelope
//	POST   /v1/jobs/{id}/cancel  cancel
//	GET    /healthz              ok / draining
//
// Jobs plan on a shared worker pool with per-job priority and worker
// shares; a submission that cannot be admitted within -admit-wait
// degrades to serial planning rather than being rejected. Every job
// transition is journaled (write-ahead, checksummed, fsynced) in -dir,
// so the daemon can be SIGKILLed at any instant and a restart recovers
// every job: finished plans are served from the journal, in-flight jobs
// replan deterministically to byte-identical plans. SIGTERM/SIGINT
// drains gracefully: every running job checkpoints (sealed envelope +
// journal record), then the process exits cleanly.
//
// -ops-addr serves the operational surface: /debug/vars (expvar),
// /debug/pprof/*, and /debug/stats — the same JSON document the CLI's
// -stats-out writes, with the serve.* job counters included.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"klotski/internal/core"
	"klotski/internal/obs"
	"klotski/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "klotskid:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("klotskid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "localhost:8080", "HTTP API listen address")
		opsAddr = fs.String("ops-addr", "", "operational surface listen address (expvar, pprof, /debug/stats); empty disables")
		dir     = fs.String("dir", "", "state directory for job journals and checkpoints (required)")

		poolWorkers = fs.Int("pool-workers", 0, "shared planning pool size (0 = GOMAXPROCS)")
		legStates   = fs.Int("leg-states", 0, "per-leg state budget between checkpoints (0 = 50000)")
		admitWait   = fs.Duration("admit-wait", 2*time.Second, "max wait for pool admission before a job degrades to serial planning")
		legPause    = fs.Duration("leg-pause", 0, "pause between planning legs — throttles background planning so anytime progress is observable (mainly for tests and demos)")

		theta  = fs.Float64("theta", 0, "default utilization bound for jobs that do not set one (0 = 0.75)")
		alpha  = fs.Float64("alpha", 0, "default within-run marginal cost α")
		maxRun = fs.Int("maxrun", 0, "default maintenance-window cap: max same-type actions per run (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return errors.New("-dir is required")
	}

	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg)
	cfg := serve.Config{
		Dir:         *dir,
		PoolWorkers: *poolWorkers,
		LegStates:   *legStates,
		AdmitWait:   *admitWait,
		Options: core.Options{
			Theta:        *theta,
			Alpha:        *alpha,
			MaxRunLength: *maxRun,
		},
		Recorder: rec,
	}
	if *legPause > 0 {
		pause := *legPause
		cfg.LegHook = func(string, int) error {
			time.Sleep(pause)
			return nil
		}
	}

	m, err := serve.Open(cfg)
	if err != nil {
		return err
	}
	defer m.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	api := &http.Server{Handler: serve.NewHandler(m)}
	fmt.Fprintf(stderr, "klotskid listening on http://%s (state dir %s)\n", ln.Addr(), *dir)
	go api.Serve(ln)

	var ops *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		reg.PublishExpvar("klotskid")
		ops = &http.Server{Handler: reg.DebugHandler()}
		fmt.Fprintf(stderr, "klotskid ops on http://%s (expvar /debug/vars, pprof /debug/pprof/, stats /debug/stats)\n", opsLn.Addr())
		go ops.Serve(opsLn)
	}

	<-ctx.Done()
	fmt.Fprintln(stderr, "klotskid: draining — checkpointing all jobs")
	m.Drain()
	api.Close()
	if ops != nil {
		ops.Close()
	}
	fmt.Fprintln(stderr, "klotskid: drained cleanly")
	return nil
}
