package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const testNPD = `{
	"version": 1,
	"name": "klotskid-test",
	"fabric": [{"dc": 0, "pods": 2, "rswPerPod": 2, "planes": 4, "sswPerPlane": 2, "fswUplinks": 1}],
	"hgrid": {"grids": 4, "faduPerGrid": 2, "fauuPerGrid": 1, "sswDownlinks": 1},
	"eb": {"count": 2, "linkTbps": 40},
	"dr": {"count": 1, "linkTbps": 80},
	"bb": {"ebbs": 1},
	"migration": {"kind": "hgrid-v1-v2"}
}`

// TestHelperProcess is not a test: it is the daemon main re-entered in a
// child process, so the e2e tests below can SIGKILL and SIGTERM a real
// klotskid and restart it over the same state directory.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("KLOTSKID_HELPER") != "1" {
		t.Skip("not a helper invocation")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, args, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "klotskid:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemon is one running klotskid child process.
type daemon struct {
	cmd    *exec.Cmd
	url    string // API base URL
	opsURL string // ops base URL ("" unless -ops-addr was passed)
	stderr *lockedBuffer
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	listenRe = regexp.MustCompile(`klotskid listening on (http://[^ ]+)`)
	opsRe    = regexp.MustCompile(`klotskid ops on (http://[^ ]+)`)
)

// startDaemon launches klotskid as a child process over dir and waits
// for its listen line(s).
func startDaemon(t *testing.T, dir string, extra ...string) *daemon {
	t.Helper()
	args := []string{"-test.run=TestHelperProcess", "--", "-addr", "127.0.0.1:0", "-dir", dir}
	args = append(args, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "KLOTSKID_HELPER=1")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	buf := &lockedBuffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: buf}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	wantOps := false
	for _, a := range extra {
		if a == "-ops-addr" {
			wantOps = true
		}
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(io.TeeReader(stderrPipe, buf))
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				d.url = m[1]
			}
			if m := opsRe.FindStringSubmatch(line); m != nil {
				d.opsURL = m[1]
			}
			if d.url != "" && (!wantOps || d.opsURL != "") {
				select {
				case <-ready:
				default:
					close(ready)
				}
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never listened; stderr:\n%s", d.stderr.String())
	}
	return d
}

// submitJob posts a request with a small leg budget and returns the job ID.
func submitJob(t *testing.T, baseURL string) string {
	t.Helper()
	body := fmt.Sprintf(`{"npd": %s, "leg_states": 8}`, testNPD)
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

type jobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Detail    string  `json:"detail"`
	Legs      int     `json:"legs"`
	Gap       float64 `json:"gap"`
	Cost      float64 `json:"cost"`
	Actions   int     `json:"actions"`
	Recovered bool    `json:"recovered"`
}

func getStatus(t *testing.T, baseURL, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getPlan(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan %s: %d %s", id, resp.StatusCode, data)
	}
	return data
}

// referencePlans runs two jobs on an undisturbed daemon and returns
// their plans and gaps — the bytes every crash scenario must reproduce.
func referencePlans(t *testing.T) (plans [][]byte, gaps []float64) {
	t.Helper()
	d := startDaemon(t, t.TempDir())
	ids := []string{submitJob(t, d.url), submitJob(t, d.url)}
	for _, id := range ids {
		id := id
		waitFor(t, "reference "+id, 2*time.Minute, func() bool {
			return getStatus(t, d.url, id).State == "DONE"
		})
		st := getStatus(t, d.url, id)
		plans = append(plans, getPlan(t, d.url, id))
		gaps = append(gaps, st.Gap)
	}
	return plans, gaps
}

// TestSIGKILLMidPlanningRecovers is the cross-process robustness e2e:
// two jobs are submitted, the daemon is SIGKILLed mid-planning, a fresh
// process restarts over the same state directory, and both jobs must
// recover and finish audited with plans byte-identical to an undisturbed
// daemon's.
func TestSIGKILLMidPlanningRecovers(t *testing.T) {
	wantPlans, wantGaps := referencePlans(t)

	dir := t.TempDir()
	d1 := startDaemon(t, dir, "-leg-pause", "40ms")
	ids := []string{submitJob(t, d1.url), submitJob(t, d1.url)}
	// Let both jobs journal at least one checkpoint leg, so the kill
	// lands mid-planning with real search state on disk.
	for _, id := range ids {
		id := id
		waitFor(t, id+" mid-planning", time.Minute, func() bool {
			st := getStatus(t, d1.url, id)
			return st.Legs >= 1 && st.State == "PLANNING"
		})
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	d2 := startDaemon(t, dir)
	for i, id := range ids {
		id := id
		waitFor(t, id+" recovery", 2*time.Minute, func() bool {
			return getStatus(t, d2.url, id).State == "DONE"
		})
		st := getStatus(t, d2.url, id)
		if !st.Recovered {
			t.Errorf("job %s not flagged recovered", id)
		}
		if st.Gap != wantGaps[i] {
			t.Errorf("job %s gap %v, undisturbed %v", id, st.Gap, wantGaps[i])
		}
		if got := getPlan(t, d2.url, id); !bytes.Equal(got, wantPlans[i]) {
			t.Errorf("job %s plan differs from undisturbed run after SIGKILL recovery", id)
		}
	}
}

// TestSIGTERMDrainsGracefully sends SIGTERM mid-planning: the daemon
// must checkpoint the job, exit 0, and a restart must finish the job
// with the undisturbed plan.
func TestSIGTERMDrainsGracefully(t *testing.T) {
	wantPlans, _ := referencePlans(t)

	dir := t.TempDir()
	d1 := startDaemon(t, dir, "-leg-pause", "40ms")
	id := submitJob(t, d1.url)
	waitFor(t, id+" mid-planning", time.Minute, func() bool {
		st := getStatus(t, d1.url, id)
		return st.Legs >= 1 && st.State == "PLANNING"
	})
	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d1.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, d1.stderr.String())
	}
	if !strings.Contains(d1.stderr.String(), "drained cleanly") {
		t.Errorf("no clean drain message; stderr:\n%s", d1.stderr.String())
	}

	d2 := startDaemon(t, dir)
	waitFor(t, id+" after drain", 2*time.Minute, func() bool {
		return getStatus(t, d2.url, id).State == "DONE"
	})
	if got := getPlan(t, d2.url, id); !bytes.Equal(got, wantPlans[0]) {
		t.Errorf("plan differs from undisturbed run after drain/restart")
	}
}

// TestOpsStatsEndpoint checks the -stats-out-compatible /debug/stats
// surface on the ops port.
func TestOpsStatsEndpoint(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "-ops-addr", "127.0.0.1:0")
	id := submitJob(t, d.url)
	waitFor(t, id+" done", 2*time.Minute, func() bool {
		return getStatus(t, d.url, id).State == "DONE"
	})
	resp, err := http.Get(d.opsURL + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]struct {
			Value int64 `json:"value"`
			Max   int64 `json:"max"`
		} `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/debug/stats is not a stats snapshot: %v", err)
	}
	if snap.Counters["serve.jobs_submitted"] != 1 {
		t.Errorf("serve.jobs_submitted = %d, want 1", snap.Counters["serve.jobs_submitted"])
	}
	if _, ok := snap.Gauges["serve.jobs_active"]; !ok {
		t.Errorf("serve.jobs_active gauge missing from /debug/stats")
	}
	// expvar surface serves too.
	vr, err := http.Get(d.opsURL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vr.Body.Close()
	if vr.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars: %d", vr.StatusCode)
	}
}

func TestRunRequiresDir(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "-dir is required") {
		t.Fatalf("run without -dir: %v", err)
	}
}
