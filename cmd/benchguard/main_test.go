package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: klotski
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlannerGuard/AStar-8         	       3	    806467 ns/op	         0 hit-rate	        23.00 states/op	   97232 B/op	     246 allocs/op
BenchmarkPlannerGuard/DP-8            	       3	    688796 ns/op	         0.03846 hit-rate	        25.00 states/op	   93400 B/op	     225 allocs/op
PASS
ok  	klotski	0.012s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %v", len(res), res)
	}
	astar, ok := res["PlannerGuard/AStar"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", res)
	}
	if astar["ns/op"] != 806467 {
		t.Errorf("ns/op = %v", astar["ns/op"])
	}
	if astar["states/op"] != 23 {
		t.Errorf("states/op = %v", astar["states/op"])
	}
	if res["PlannerGuard/DP"]["hit-rate"] != 0.03846 {
		t.Errorf("hit-rate = %v", res["PlannerGuard/DP"]["hit-rate"])
	}
}

// guard runs the CLI against the given stdin and returns exit code plus
// combined output.
func guard(t *testing.T, stdin string, args ...string) (int, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(strings.NewReader(stdin), &out, &errOut, args)
	return code, out.String() + errOut.String()
}

func TestBootstrapThenPass(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")

	code, out := guard(t, benchOutput, "-baseline", base)
	if code != 0 {
		t.Fatalf("bootstrap run failed (%d): %s", code, out)
	}
	if !strings.Contains(out, "bootstrapping") {
		t.Errorf("expected bootstrap notice, got: %s", out)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Identical rerun must pass.
	code, out = guard(t, benchOutput, "-baseline", base)
	if code != 0 {
		t.Fatalf("identical rerun failed (%d): %s", code, out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("identical rerun reported failures: %s", out)
	}
}

func TestFailsOnSlowdown(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	slow := strings.Replace(benchOutput, "806467 ns/op", "2806467 ns/op", 1)
	code, out := guard(t, slow, "-baseline", base)
	if code != 1 {
		t.Fatalf("3.5x slowdown should fail, got code %d: %s", code, out)
	}
	if !strings.Contains(out, "FAIL PlannerGuard/AStar ns/op") {
		t.Errorf("failure should name the regressed metric: %s", out)
	}
}

func TestToleratesNoiseWithinLimit(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	noisy := strings.Replace(benchOutput, "806467 ns/op", "950000 ns/op", 1) // +18%
	if code, out := guard(t, noisy, "-baseline", base); code != 0 {
		t.Fatalf("18%% growth is within the 30%% default: %s", out)
	}
}

func TestFailsOnMissingBenchmark(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	onlyDP := strings.Replace(benchOutput,
		"BenchmarkPlannerGuard/AStar-8         	       3	    806467 ns/op	         0 hit-rate	        23.00 states/op	   97232 B/op	     246 allocs/op\n", "", 1)
	code, out := guard(t, onlyDP, "-baseline", base)
	if code != 1 {
		t.Fatalf("vanished benchmark should fail, got %d: %s", code, out)
	}
	if !strings.Contains(out, "missing from current run") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	slow := strings.Replace(benchOutput, "806467 ns/op", "9806467 ns/op", 1)
	if code, out := guard(t, slow, "-baseline", base, "-update"); code != 0 {
		t.Fatalf("-update should not compare: %s", out)
	}
	// The slowed run is now the baseline, so it passes.
	if code, out := guard(t, slow, "-baseline", base); code != 0 {
		t.Fatalf("run matching updated baseline failed: %s", out)
	}
}

func TestEmptyInputIsAnError(t *testing.T) {
	code, out := guard(t, "PASS\nok  \tklotski\t0.1s\n", "-baseline", filepath.Join(t.TempDir(), "b.json"))
	if code != 2 {
		t.Fatalf("no benchmark lines should be an infrastructure error, got %d: %s", code, out)
	}
}
