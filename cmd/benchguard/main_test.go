package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: klotski
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlannerGuard/AStar-8         	       3	    806467 ns/op	         0 hit-rate	        23.00 states/op	   97232 B/op	     246 allocs/op
BenchmarkPlannerGuard/DP-8            	       3	    688796 ns/op	         0.03846 hit-rate	        25.00 states/op	   93400 B/op	     225 allocs/op
PASS
ok  	klotski	0.012s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %v", len(res), res)
	}
	astar, ok := res["PlannerGuard/AStar"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", res)
	}
	if astar["ns/op"] != 806467 {
		t.Errorf("ns/op = %v", astar["ns/op"])
	}
	if astar["states/op"] != 23 {
		t.Errorf("states/op = %v", astar["states/op"])
	}
	if res["PlannerGuard/DP"]["hit-rate"] != 0.03846 {
		t.Errorf("hit-rate = %v", res["PlannerGuard/DP"]["hit-rate"])
	}
}

// guard runs the CLI against the given stdin and returns exit code plus
// combined output.
func guard(t *testing.T, stdin string, args ...string) (int, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(strings.NewReader(stdin), &out, &errOut, args)
	return code, out.String() + errOut.String()
}

func TestBootstrapThenPass(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")

	code, out := guard(t, benchOutput, "-baseline", base)
	if code != 0 {
		t.Fatalf("bootstrap run failed (%d): %s", code, out)
	}
	if !strings.Contains(out, "bootstrapping") {
		t.Errorf("expected bootstrap notice, got: %s", out)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Identical rerun must pass.
	code, out = guard(t, benchOutput, "-baseline", base)
	if code != 0 {
		t.Fatalf("identical rerun failed (%d): %s", code, out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("identical rerun reported failures: %s", out)
	}
}

func TestFailsOnSlowdown(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	slow := strings.Replace(benchOutput, "806467 ns/op", "2806467 ns/op", 1)
	code, out := guard(t, slow, "-baseline", base)
	if code != 1 {
		t.Fatalf("3.5x slowdown should fail, got code %d: %s", code, out)
	}
	if !strings.Contains(out, "FAIL PlannerGuard/AStar ns/op") {
		t.Errorf("failure should name the regressed metric: %s", out)
	}
}

func TestToleratesNoiseWithinLimit(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	noisy := strings.Replace(benchOutput, "806467 ns/op", "950000 ns/op", 1) // +18%
	if code, out := guard(t, noisy, "-baseline", base); code != 0 {
		t.Fatalf("18%% growth is within the 30%% default: %s", out)
	}
}

func TestFailsOnMissingBenchmark(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	onlyDP := strings.Replace(benchOutput,
		"BenchmarkPlannerGuard/AStar-8         	       3	    806467 ns/op	         0 hit-rate	        23.00 states/op	   97232 B/op	     246 allocs/op\n", "", 1)
	code, out := guard(t, onlyDP, "-baseline", base)
	if code != 1 {
		t.Fatalf("vanished benchmark should fail, got %d: %s", code, out)
	}
	if !strings.Contains(out, "missing from current run") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, benchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	slow := strings.Replace(benchOutput, "806467 ns/op", "9806467 ns/op", 1)
	if code, out := guard(t, slow, "-baseline", base, "-update"); code != 0 {
		t.Fatalf("-update should not compare: %s", out)
	}
	// The slowed run is now the baseline, so it passes.
	if code, out := guard(t, slow, "-baseline", base); code != 0 {
		t.Fatalf("run matching updated baseline failed: %s", out)
	}
}

// largeBenchOutput satisfies both relational invariants: the adaptive
// parallel entries tie or beat their serial twins, and audit overhead sits
// at +10%/+8% against the NoAudit twins.
const largeBenchOutput = `goos: linux
goarch: amd64
pkg: klotski
BenchmarkPlannerGuardLarge/AStar-8         	       5	 220000000 ns/op	      1234 states/op
BenchmarkPlannerGuardLarge/DP-8            	       5	 270000000 ns/op	      2000 states/op
BenchmarkPlannerGuardLarge/AStarParallel-8 	       5	 215000000 ns/op
BenchmarkPlannerGuardLarge/DPParallel-8    	       5	 268000000 ns/op
BenchmarkPlannerGuardLarge/AStarNoAudit-8  	       5	 200000000 ns/op	      1234 states/op
BenchmarkPlannerGuardLarge/DPNoAudit-8     	       5	 250000000 ns/op	      2000 states/op
PASS
ok  	klotski	11.2s
`

func TestRelationalInvariantsPass(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	code, out := guard(t, largeBenchOutput, "-baseline", base)
	if code != 0 {
		t.Fatalf("invariant-satisfying run failed (%d): %s", code, out)
	}
	if !strings.Contains(out, "parallel-vs-serial") || !strings.Contains(out, "audit-overhead") {
		t.Errorf("relational checks not reported: %s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("unexpected relational failure: %s", out)
	}
}

func TestRelationalParallelExcessFails(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	if code, out := guard(t, largeBenchOutput, "-baseline", base); code != 0 {
		t.Fatal(out)
	}
	// AStarParallel at +18% over serial blows the default +10% allowance.
	slow := strings.Replace(largeBenchOutput, "215000000 ns/op", "260000000 ns/op", 1)
	code, out := guard(t, slow, "-baseline", base)
	if code != 1 {
		t.Fatalf("parallel losing to serial should fail, got %d: %s", code, out)
	}
	if !strings.Contains(out, "FAIL parallel-vs-serial") {
		t.Errorf("failure should name the relational rule: %s", out)
	}
	// A loosened allowance (noisy shared runner) accepts the same run.
	if code, out := guard(t, slow, "-baseline", base, "-max-parallel-excess", "0.5"); code != 0 {
		t.Fatalf("loosened allowance should pass: %s", out)
	}
}

func TestRelationalAuditOverheadBlocksUpdate(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	// Audited AStar at +20% over NoAudit blows the default +15% allowance;
	// bootstrapping (an implicit -update) must refuse to commit it.
	costly := strings.Replace(largeBenchOutput, "220000000 ns/op", "240000000 ns/op", 1)
	code, out := guard(t, costly, "-baseline", base)
	if code != 1 {
		t.Fatalf("audit overhead beyond limit should block bootstrap, got %d: %s", code, out)
	}
	if !strings.Contains(out, "refusing to write baseline") {
		t.Errorf("expected update refusal notice: %s", out)
	}
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Errorf("baseline must not be written on relational failure")
	}
}

func TestRelationalSkippedWithoutLargeFixture(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	code, out := guard(t, benchOutput, "-baseline", base)
	if code != 0 {
		t.Fatal(out)
	}
	if strings.Contains(out, "parallel-vs-serial") || strings.Contains(out, "audit-overhead") {
		t.Errorf("relational rules must skip silently when the fixture is absent: %s", out)
	}
}

const fleetBenchOutput = `goos: linux
BenchmarkFleetGuard/Sequential-8 	      30	  62000000 ns/op
BenchmarkFleetGuard/Naive-8      	      30	  90000000 ns/op
BenchmarkFleetGuard/Fleet-8      	      30	  60000000 ns/op
PASS
ok  	klotski	9.1s
`

func TestRelationalFleetExcess(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH.json")
	code, out := guard(t, fleetBenchOutput, "-baseline", base)
	if code != 0 {
		t.Fatalf("fleet beating both alternatives should pass, got %d: %s", code, out)
	}
	if !strings.Contains(out, "fleet-vs-sequential") || !strings.Contains(out, "fleet-vs-naive") {
		t.Errorf("fleet relational checks not reported: %s", out)
	}

	// Fleet at +21% over sequential blows the default +10% allowance
	// (while staying inside the +30% absolute-baseline tolerance, so the
	// failure is purely relational).
	slow := strings.Replace(fleetBenchOutput, "60000000 ns/op", "75000000 ns/op", 1)
	code, out = guard(t, slow, "-baseline", base)
	if code != 1 {
		t.Fatalf("fleet losing to sequential should fail, got %d: %s", code, out)
	}
	if !strings.Contains(out, "FAIL fleet-vs-sequential") {
		t.Errorf("failure should name the fleet rule: %s", out)
	}
	// A loosened allowance (single-core runner: the shapes tie) accepts it.
	if code, out := guard(t, slow, "-baseline", base, "-max-fleet-excess", "0.5"); code != 0 {
		t.Fatalf("loosened fleet allowance should pass: %s", out)
	}
}

func TestEmptyInputIsAnError(t *testing.T) {
	code, out := guard(t, "PASS\nok  \tklotski\t0.1s\n", "-baseline", filepath.Join(t.TempDir(), "b.json"))
	if code != 2 {
		t.Fatalf("no benchmark lines should be an infrastructure error, got %d: %s", code, out)
	}
}
