// Command benchguard turns `go test -bench` output into a committed
// performance baseline and fails when the current run regresses past a
// tolerance. It reads benchmark output on stdin:
//
//	go test -run '^$' -bench BenchmarkPlannerGuard -benchtime 10x . |
//	    benchguard -baseline BENCH_planner.json
//
// Each benchmark line is parsed into its metric pairs (ns/op, states/op,
// hit-rate, B/op, ...). If the baseline file does not exist, benchguard
// bootstraps it from the current run and exits zero — so the first CI run
// on a new branch self-initializes instead of failing. Otherwise every
// guarded metric is compared against the baseline and the run fails if
// any grows by more than -max-slowdown (default 0.30, chosen to clear
// shared-runner noise while catching algorithmic regressions; states/op
// is deterministic, so even small growth there trips the wall-clock
// tolerance only when real).
//
// Beyond the absolute baseline, two RELATIONAL invariants are enforced on
// the large guard fixture (BenchmarkPlannerGuardLarge) whenever its
// entries appear in the run, comparing entries of the same run against
// each other — immune to machine speed, sensitive only to the ratios the
// design promises:
//
//   - AStarParallel/DPParallel must not exceed their serial twins' ns/op
//     by more than -max-parallel-excess: the adaptive worker policy must
//     keep "parallel" from losing to serial on any host (on a single CPU
//     it resolves to the serial path, so the entries tie up to noise).
//   - The audited defaults (AStar/DP) must not exceed their NoAudit twins
//     by more than -max-audit-overhead: the incremental parallel audit
//     engine keeps the safety replay a small fraction of planning.
//   - The fleet guard fixture's shared-pool entry (FleetGuard/Fleet) must
//     not exceed the same run's sequential-adaptive and naive-concurrent
//     entries by more than -max-fleet-excess: the shared work-stealing
//     scheduler has to beat planning the fleet one at a time AND
//     oversubscribing the host with per-plan worker sets (on a single CPU
//     all three shapes resolve to near-serial execution and tie).
//   - With -min-prune-ratio r > 0, the bound-pruned entries
//     (AStarBounded/DPBounded) must come in at least r below their
//     unpruned twins in states/op — the lower-bound engine must actually
//     prune. The Bounded entries share one warm engine across iterations,
//     so this rule needs -benchtime well above 1x (the first, cold
//     iteration learns the cuts the rest exploit; at 1x the ratio is 1).
//
// Relational violations also block -update, so a baseline that breaks the
// invariants cannot be committed by accident.
//
// Regenerate the baseline deliberately with -update after an accepted
// performance change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds the parsed metrics of one benchmark, keyed by unit
// ("ns/op", "states/op", ...).
type Result map[string]float64

// Baseline is the on-disk format: benchmark name (GOMAXPROCS suffix
// stripped) → metrics.
type Baseline struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

// guardedUnits are the metrics compared against the baseline. Growth
// beyond the tolerance in any of them fails the guard; other reported
// units (B/op, hit-rate) are recorded for inspection but not enforced —
// hit-rate in particular regresses by *shrinking*, which a slowdown
// threshold cannot express, and it already shows up as states/op growth.
var guardedUnits = []string{"ns/op", "states/op"}

// cpuSuffix strips the trailing -N GOMAXPROCS marker go test appends to
// benchmark names, so baselines transfer across machines.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		res := make(Result)
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad value %q in line %q", fields[i], line)
			}
			res[fields[i+1]] = v
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchguard: reading input: %w", err)
	}
	return out, nil
}

func writeBaseline(path string, b Baseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_planner.json", "baseline file to compare against")
	maxSlowdown := fs.Float64("max-slowdown", 0.30, "maximum tolerated fractional growth per guarded metric")
	maxParallelExcess := fs.Float64("max-parallel-excess", 0.10, "maximum tolerated ns/op excess of the large fixture's parallel entries over their serial twins")
	maxAuditOverhead := fs.Float64("max-audit-overhead", 0.15, "maximum tolerated ns/op excess of the large fixture's audited entries over their NoAudit twins")
	maxFleetExcess := fs.Float64("max-fleet-excess", 0.10, "maximum tolerated ns/op excess of the fleet fixture's shared-pool entry over the sequential and naive-concurrent entries")
	minPruneRatio := fs.Float64("min-prune-ratio", 0, "minimum required fractional states/op reduction of the large fixture's Bounded entries vs their unpruned twins (0 = off; needs a warm engine, i.e. -benchtime well above 1x)")
	update := fs.Bool("update", false, "rewrite the baseline from the current run instead of comparing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	current, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchguard: no benchmark lines on stdin (did the bench run fail?)")
		return 2
	}

	relFailures := checkRelational(current, *maxParallelExcess, *maxAuditOverhead, *minPruneRatio, *maxFleetExcess, stdout)

	base, err := readBaseline(*baselinePath)
	if os.IsNotExist(err) && !*update {
		fmt.Fprintf(stderr, "benchguard: no baseline at %s; bootstrapping from current run\n", *baselinePath)
		*update = true
	} else if err != nil && !*update {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 2
	}
	if *update {
		if relFailures > 0 {
			fmt.Fprintf(stderr, "benchguard: refusing to write baseline: %d relational invariant(s) violated (rerun, or raise -max-parallel-excess/-max-audit-overhead deliberately)\n", relFailures)
			return 1
		}
		if err := writeBaseline(*baselinePath, Baseline{Benchmarks: current}); err != nil {
			fmt.Fprintf(stderr, "benchguard: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchguard: wrote baseline %s (%d benchmarks)\n", *baselinePath, len(current))
		return 0
	}

	failures := relFailures
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			fmt.Fprintf(stderr, "FAIL %s: benchmark missing from current run\n", name)
			failures++
			continue
		}
		for _, unit := range guardedUnits {
			bv, inBase := want[unit]
			gv, inCur := got[unit]
			if !inBase || bv <= 0 {
				continue
			}
			if !inCur {
				fmt.Fprintf(stderr, "FAIL %s: metric %s missing from current run\n", name, unit)
				failures++
				continue
			}
			growth := gv/bv - 1
			status := "ok  "
			if growth > *maxSlowdown {
				status = "FAIL"
				failures++
			}
			fmt.Fprintf(stdout, "%s %s %s: baseline %.4g, current %.4g (%+.1f%%, limit +%.0f%%)\n",
				status, name, unit, bv, gv, growth*100, *maxSlowdown*100)
		}
	}
	for name := range current {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(stdout, "note %s: not in baseline (run with -update to add)\n", name)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "benchguard: %d regression(s) beyond +%.0f%%\n", failures, *maxSlowdown*100)
		return 1
	}
	return 0
}

// checkRelational enforces the large fixture's same-run ratio invariants:
// parallel vs serial ns/op, audited vs NoAudit ns/op, and — when
// -min-prune-ratio is set — bound-pruned vs unpruned states/op. Rules
// whose entries are absent from the run are skipped silently — other
// bench selections (the micro guard, the evaluator benches) carry no
// relational contract. A rule with a negative limit is a floor in
// disguise: the numerator must come in at least |limit| BELOW the
// denominator, which is how the prune-ratio rule demands a minimum
// states/op reduction instead of tolerating a maximum excess.
func checkRelational(current map[string]Result, maxParallelExcess, maxAuditOverhead, minPruneRatio, maxFleetExcess float64, stdout io.Writer) int {
	type rule struct {
		what     string
		num, den string
		unit     string
		limit    float64
	}
	rules := []rule{
		{"parallel-vs-serial", "PlannerGuardLarge/AStarParallel", "PlannerGuardLarge/AStar", "ns/op", maxParallelExcess},
		{"parallel-vs-serial", "PlannerGuardLarge/DPParallel", "PlannerGuardLarge/DP", "ns/op", maxParallelExcess},
		{"audit-overhead", "PlannerGuardLarge/AStar", "PlannerGuardLarge/AStarNoAudit", "ns/op", maxAuditOverhead},
		{"audit-overhead", "PlannerGuardLarge/DP", "PlannerGuardLarge/DPNoAudit", "ns/op", maxAuditOverhead},
		{"fleet-vs-sequential", "FleetGuard/Fleet", "FleetGuard/Sequential", "ns/op", maxFleetExcess},
		{"fleet-vs-naive", "FleetGuard/Fleet", "FleetGuard/Naive", "ns/op", maxFleetExcess},
	}
	if minPruneRatio > 0 {
		rules = append(rules,
			rule{"prune-ratio", "PlannerGuardLarge/AStarBounded", "PlannerGuardLarge/AStar", "states/op", -minPruneRatio},
			rule{"prune-ratio", "PlannerGuardLarge/DPBounded", "PlannerGuardLarge/DP", "states/op", -minPruneRatio},
		)
	}
	failures := 0
	for _, r := range rules {
		num, okN := current[r.num][r.unit]
		den, okD := current[r.den][r.unit]
		if !okN || !okD || den <= 0 {
			continue
		}
		excess := num/den - 1
		status := "ok  "
		if excess > r.limit {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout, "%s %s: %s %.4g %s vs %s %.4g %s (%+.1f%%, limit %+.0f%%)\n",
			status, r.what, r.num, num, r.unit, r.den, den, r.unit, excess*100, r.limit*100)
	}
	return failures
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("benchguard: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]))
}
