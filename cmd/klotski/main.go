// Command klotski plans a datacenter network migration from an NPD
// document and emits the ordered topology phases as JSON.
//
// Usage:
//
//	klotski -npd region.json [-o plan.json] [-planner astar|dp|mrc|janus]
//	        [-theta 0.75] [-alpha 0] [-growth 0] [-maxrun 0] [-timeout 5m] [-v]
//	klotski -npd region.json -resume plan.json -executed 12   # replan the rest
//
// The NPD document must carry a migration part; see cmd/topogen for
// generating example documents. With -v the plan's runs and per-phase
// network snapshots are printed to stderr. With -resume, the first
// -executed actions of an earlier plan document are treated as done and
// only the remainder is re-planned (demand may have shifted; pass -growth
// or edit the NPD demand part accordingly).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"klotski"
	"klotski/internal/demand"
	"klotski/internal/npd"
	"klotski/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "klotski:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("klotski", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		npdPath = fs.String("npd", "", "path to the NPD document (required)")
		outPath = fs.String("o", "", "write the plan document here (default stdout)")
		planner = fs.String("planner", "astar", "planner: astar, dp, mrc, janus")
		theta   = fs.Float64("theta", 0, "utilization bound (default 0.75)")
		alpha   = fs.Float64("alpha", 0, "within-run marginal cost α of f_cost(x)=1+α(x−1)")
		growth  = fs.Float64("growth", 0, "forecasted demand growth per migration step (e.g. 0.002)")
		maxRun  = fs.Int("maxrun", 0, "maintenance-window cap: max same-type actions per run (0 = unlimited)")
		timeout = fs.Duration("timeout", 5*time.Minute, "planning time budget")
		verbose = fs.Bool("v", false, "print the plan's runs and phase snapshots to stderr")

		resume   = fs.String("resume", "", "earlier plan document to resume from")
		executed = fs.Int("executed", 0, "number of actions of the -resume plan already executed")
		simulate = fs.Int("simulate", 0, "replay the plan this many times with randomized asynchrony and report transient exposure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *npdPath == "" {
		fs.Usage()
		return fmt.Errorf("-npd is required")
	}

	f, err := os.Open(*npdPath)
	if err != nil {
		return err
	}
	doc, err := klotski.LoadNPD(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := klotski.PipelineConfig{
		Planner:       klotski.PlannerName(*planner),
		CampaignSeeds: *simulate,
		Options: klotski.Options{
			Theta: *theta, Alpha: *alpha, Timeout: *timeout, MaxRunLength: *maxRun,
		},
	}
	if *growth > 0 {
		cfg.Forecast = demand.Forecast{GrowthPerStep: *growth}
	}

	start := time.Now()
	var res *klotski.PipelineResult
	if *resume != "" {
		res, err = replanFromDocument(doc, cfg, *resume, *executed)
	} else {
		res, err = klotski.RunPipeline(doc, cfg)
	}
	if err != nil {
		return err
	}

	if *verbose {
		fmt.Fprintf(stderr, "planned in %s (%d states, %d checks, %d cache hits)\n",
			time.Since(start).Round(time.Millisecond),
			res.Plan.Metrics.StatesCreated, res.Plan.Metrics.Checks, res.Plan.Metrics.CacheHits)
		if res.Replans > 0 {
			fmt.Fprintf(stderr, "forecast integration re-planned %d time(s)\n", res.Replans)
		}
		if err := report.Timeline(stderr, res.Document); err != nil {
			return err
		}
		if err := report.Margins(stderr, res.Document); err != nil {
			return err
		}
	}
	if res.Campaign != nil {
		fmt.Fprintln(stderr, res.Campaign)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return res.Document.Encode(out)
}

// replanFromDocument rebuilds the scenario from the NPD document, replays
// the first n actions of the earlier plan document, and re-plans the
// remainder.
func replanFromDocument(doc *klotski.NPDDocument, cfg klotski.PipelineConfig, planPath string, n int) (*klotski.PipelineResult, error) {
	f, err := os.Open(planPath)
	if err != nil {
		return nil, err
	}
	prev, err := npd.DecodePlan(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	scenario, err := doc.Scenario()
	if err != nil {
		return nil, err
	}
	task := scenario.Task
	byName := make(map[string]int, len(task.Blocks))
	for i := range task.Blocks {
		byName[task.Blocks[i].Name] = i
	}
	var executed []int
	for _, ph := range prev.Phases {
		for _, name := range ph.Blocks {
			if len(executed) == n {
				break
			}
			id, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("plan block %q not found in scenario %q — was the NPD document edited?", name, doc.Name)
			}
			executed = append(executed, id)
		}
	}
	if len(executed) < n {
		return nil, fmt.Errorf("-executed %d exceeds the %d actions in %s", n, len(executed), planPath)
	}
	plan, err := klotski.ReplanMigration(task, executed, nil, cfg)
	if err != nil {
		return nil, err
	}
	planDoc, err := npd.BuildPlanDocumentFrom(task, executed, plan, cfg.Options)
	if err != nil {
		return nil, err
	}
	return &klotski.PipelineResult{Scenario: scenario, Task: task, Plan: plan, Document: planDoc}, nil
}
