// Command klotski plans a datacenter network migration from an NPD
// document and emits the ordered topology phases as JSON.
//
// Usage:
//
//	klotski -npd region.json [-o plan.json] [-planner astar|dp|mrc|janus]
//	        [-theta 0.75] [-alpha 0] [-growth 0] [-maxrun 0] [-timeout 5m] [-v]
//	        [-gap] [-gap-max 0]
//	        [-checkpoint ckpt.json] [-chaos 0] [-chaos-faults 3] [-chaos-seed 1]
//	        [-drift-threshold 0] [-demand-margin 1.25]
//	        [-stats-out stats.json] [-debug-addr localhost:6060]
//	klotski -npd region.json -resume plan.json -executed 12   # replan the rest
//	klotski -npd region.json -audit plan.json                 # verify offline
//	klotski -fleet manifest.json [-fleet-workers 0] [-fleet-no-shared-cuts]
//	        [-fleet-checkpoint-dir ckpts/]
//
// The NPD document must carry a migration part; see cmd/topogen for
// generating example documents. With -v the plan's runs and per-phase
// network snapshots are printed to stderr. With -resume, the first
// -executed actions of an earlier plan document are treated as done and
// only the remainder is re-planned (demand may have shifted; pass -growth
// or edit the NPD demand part accordingly).
//
// Planning is interruptible: on SIGINT (or -timeout expiry) the search
// stops at a checkpoint instead of discarding its work. With -checkpoint
// the best safe partial sequence explored so far is written as a plan
// document that the -resume/-executed flow accepts once those actions have
// been executed. Checkpoints are written atomically (temp file + fsync +
// rename) inside a versioned, checksummed envelope, so a crash mid-write
// never leaves a file that silently resumes from garbage.
//
// With -audit the named plan or checkpoint document is independently
// verified against the NPD scenario — every boundary state replayed on a
// pristine serial evaluator — and the process exits non-zero if any state
// violates the constraints or the sequence was tampered with.
//
// With -chaos N the planned migration is additionally driven through N
// Monte Carlo chaos runs: each run draws a random fault train (switch
// outages, circuit flaps, demand surges, transient action failures) and
// executes the migration with the fault-tolerant control loop — retries,
// backoff, and replanning — reporting completion rate and worst-case
// boundary utilization to stderr.
//
// With -drift-threshold > 0 the chaos controller additionally observes
// demand telemetry before each run, replans when observed drift exceeds
// the threshold, and — when telemetry is dropped or corrupted (the fault
// train then includes telemetry faults) — degrades to planning against the
// last good demand inflated by -demand-margin. With -gap-skip G > 0 a
// drift replan is skipped when the remaining plan re-audits safe against
// the drifted demands and its cost is certified within G of the
// completion lower bound — drift that cannot buy a better plan no longer
// costs a replan. The resulting ctrl.drift_replans, ctrl.gap_skips,
// ctrl.telemetry_faults, and ctrl.degraded_runs counters land in the
// -stats-out snapshot.
//
// Every optimal-planner run carries an anytime optimality certificate:
// the incumbent plan cost, the proven global lower bound, and the
// certified relative gap between them (0 when the plan is provably
// optimal). -gap prints the certificate to stderr; -gap-max G exits
// non-zero when the certified gap exceeds G (so -gap-max 0 demands a
// proven-optimal plan). The certificate also lands in the -stats-out
// snapshot (planner.optimality_gap) and in checkpoint envelopes, where
// resuming restores and can only tighten it.
//
// With -fleet, instead of planning one NPD document, a manifest of fleet
// members ({"members":[{"name","npd","planner","priority","min_share",
// "max_share"}]}) is planned concurrently under one shared work-stealing
// worker pool sized by -fleet-workers (0 = GOMAXPROCS). Higher-priority
// members preempt lower-priority ones mid-search (the victim checkpoints
// and later resumes, producing the identical plan); members planning the
// same fabric structure share learned lower-bound cuts unless
// -fleet-no-shared-cuts is set. The fleet report (per-member plan cost,
// gap, preemptions, waits; aggregate makespan and cross-plan cut hits) is
// written as JSON to -o, and the exit status is non-zero if any member
// failed. Fleet runs stop cleanly on SIGINT and SIGTERM: every member
// halts at a planner checkpoint, the report is still written, and with
// -fleet-checkpoint-dir each interrupted member's best safe partial
// sequence is sealed into that directory as <member>.ckpt.json — the
// same envelope -checkpoint writes for a single plan, resumable per
// member via -resume/-executed.
//
// Observability: -stats-out writes a JSON snapshot of the planner's
// instruments (states created/expanded, check-latency histogram, cache
// hit/miss counts and ratio, span timings, bound-engine cut counters)
// when the run ends — including interrupted runs. -debug-addr serves the
// live registry over HTTP while planning: expvar under /debug/vars,
// profiles under /debug/pprof/.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"klotski"
	"klotski/internal/demand"
	"klotski/internal/npd"
	"klotski/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "klotski:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("klotski", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		npdPath = fs.String("npd", "", "path to the NPD document (required)")
		outPath = fs.String("o", "", "write the plan document here (default stdout)")
		planner = fs.String("planner", "astar", "planner: astar, dp, mrc, janus")
		theta   = fs.Float64("theta", 0, "utilization bound (default 0.75)")
		alpha   = fs.Float64("alpha", 0, "within-run marginal cost α of f_cost(x)=1+α(x−1)")
		growth  = fs.Float64("growth", 0, "forecasted demand growth per migration step (e.g. 0.002)")
		maxRun  = fs.Int("maxrun", 0, "maintenance-window cap: max same-type actions per run (0 = unlimited)")
		workers = fs.Int("workers", -1, "parallel search workers for astar/dp (-1 = adaptive: sized at run time from contention/waste/hit-rate counters; 0 or 1 = serial; plans are identical at any setting)")
		timeout = fs.Duration("timeout", 5*time.Minute, "planning time budget")

		auditSerial = fs.Bool("audit-serial", false, "run the post-planning audit on the serial reference engine instead of the incremental parallel one (slower, same verdicts)")
		verbose     = fs.Bool("v", false, "print the plan's runs and phase snapshots to stderr")

		gap    = fs.Bool("gap", false, "print the plan's certified optimality certificate (incumbent cost, proven lower bound, relative gap) to stderr")
		gapMax = fs.Float64("gap-max", -1, "exit non-zero when the certified relative optimality gap exceeds this value (e.g. 0 demands a proven-optimal plan; -1 = off)")

		resume   = fs.String("resume", "", "earlier plan document to resume from")
		executed = fs.Int("executed", 0, "number of actions of the -resume plan already executed")
		simulate = fs.Int("simulate", 0, "replay the plan this many times with randomized asynchrony and report transient exposure")
		auditDoc = fs.String("audit", "", "independently verify this plan or checkpoint document against the NPD scenario and exit")

		ckptPath    = fs.String("checkpoint", "", "on interrupted planning (SIGINT, -timeout), write the best safe partial sequence here")
		chaos       = fs.Int("chaos", 0, "run the plan through this many chaos-campaign control-loop runs")
		chaosFaults = fs.Int("chaos-faults", 3, "faults per chaos run")
		chaosSeed   = fs.Int64("chaos-seed", 1, "base seed for the chaos campaign")

		driftThreshold = fs.Float64("drift-threshold", 0, "chaos-campaign demand-drift replan threshold (relative L1 deviation; 0 = drift loop off)")
		gapSkip        = fs.Float64("gap-skip", 0, "skip drift replans when the remaining plan re-audits safe and its cost is certified within this relative gap of the completion lower bound (0 = off)")
		demandMargin   = fs.Float64("demand-margin", 1.25, "degraded-mode demand envelope multiplier when telemetry is unusable")

		fleetPath    = fs.String("fleet", "", "plan a fleet: JSON manifest of members ({\"members\":[{\"name\",\"npd\",\"planner\",\"priority\",\"min_share\",\"max_share\"}]}) planned concurrently under one shared worker pool")
		fleetWorkers = fs.Int("fleet-workers", 0, "shared pool worker budget for -fleet (0 = GOMAXPROCS)")
		fleetNoCuts  = fs.Bool("fleet-no-shared-cuts", false, "disable cross-member structural-cut sharing in -fleet runs")
		fleetCkptDir = fs.String("fleet-checkpoint-dir", "", "on interrupted fleet planning (SIGINT, SIGTERM, -timeout), seal every interrupted member's best safe partial sequence into this directory (<member>.ckpt.json)")

		statsOut  = fs.String("stats-out", "", "write a JSON observability snapshot (counters, gauges, histograms, spans) here on exit")
		debugAddr = fs.String("debug-addr", "", "serve live expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *npdPath == "" && *fleetPath == "" {
		fs.Usage()
		return fmt.Errorf("-npd (or -fleet) is required")
	}

	// Observability: the recorder is wired into the planners only when an
	// export is requested; otherwise Options.Recorder stays nil and the
	// search hot path pays a single branch per event.
	var rec *klotski.ObsRecorder
	if *statsOut != "" || *debugAddr != "" {
		reg := klotski.DefaultObsRegistry()
		rec = klotski.NewObsRecorder(reg)
		if *statsOut != "" {
			// Deferred so interrupted runs still leave a snapshot behind.
			defer func() {
				if werr := writeStats(*statsOut, reg); werr != nil {
					fmt.Fprintln(stderr, "klotski: writing stats:", werr)
				}
			}()
		}
		if *debugAddr != "" {
			stopDebug, err := serveDebug(*debugAddr, reg, stderr)
			if err != nil {
				return fmt.Errorf("starting debug server: %w", err)
			}
			defer stopDebug()
		}
	}

	cfgOpts := klotski.Options{
		Theta: *theta, Alpha: *alpha, Timeout: *timeout, MaxRunLength: *maxRun,
		Workers: *workers, AuditSerial: *auditSerial, Recorder: rec,
	}
	if *fleetPath != "" {
		return runFleet(ctx, *fleetPath, *fleetWorkers, *fleetNoCuts, *fleetCkptDir, cfgOpts, *outPath, stdout, stderr, rec)
	}

	f, err := os.Open(*npdPath)
	if err != nil {
		return err
	}
	doc, err := klotski.LoadNPD(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := klotski.PipelineConfig{
		Planner:       klotski.PlannerName(*planner),
		CampaignSeeds: *simulate,
		Options:       cfgOpts,
	}
	if *growth > 0 {
		cfg.Forecast = demand.Forecast{GrowthPerStep: *growth}
	}

	if *auditDoc != "" {
		return auditDocument(doc, cfg, *auditDoc, stderr)
	}

	start := time.Now()
	var res *klotski.PipelineResult
	if *resume != "" {
		res, err = replanFromDocument(ctx, doc, cfg, *resume, *executed)
	} else {
		res, err = klotski.RunPipelineContext(ctx, doc, cfg)
	}
	if err != nil {
		var interrupted *klotski.Interrupted
		if errors.As(err, &interrupted) && *ckptPath != "" {
			n, werr := writeCheckpoint(*ckptPath, interrupted, cfg.Options)
			if werr != nil {
				return fmt.Errorf("%w (writing checkpoint also failed: %v)", err, werr)
			}
			fmt.Fprintf(stderr, "planning interrupted (%v); %d safe actions checkpointed to %s\n", interrupted.Reason, n, *ckptPath)
			fmt.Fprintf(stderr, "after executing them, continue with: -resume %s -executed %d\n", *ckptPath, n)
		}
		return err
	}

	if *gap || *gapMax >= 0 {
		m := res.Plan.Metrics
		fmt.Fprintf(stderr, "optimality certificate: incumbent %g, lower bound %g, gap %.2f%%\n",
			m.IncumbentCost, m.LowerBound, m.OptimalityGap*100)
	}

	if *verbose {
		fmt.Fprintf(stderr, "planned in %s (%d states, %d checks, %d cache hits, %d misses)\n",
			time.Since(start).Round(time.Millisecond),
			res.Plan.Metrics.StatesCreated, res.Plan.Metrics.Checks,
			res.Plan.Metrics.CacheHits, res.Plan.Metrics.CacheMisses)
		if res.Replans > 0 {
			fmt.Fprintf(stderr, "forecast integration re-planned %d time(s)\n", res.Replans)
		}
		if err := report.Timeline(stderr, res.Document); err != nil {
			return err
		}
		if err := report.Margins(stderr, res.Document); err != nil {
			return err
		}
	}
	if res.Campaign != nil {
		fmt.Fprintln(stderr, res.Campaign)
	}
	if *chaos > 0 {
		rep, err := klotski.ChaosCampaign(ctx, res.Task, klotski.ChaosCampaignOptions{
			Seeds: *chaos,
			Seed:  *chaosSeed,
			// Telemetry faults are only drawn when the drift loop consuming
			// them is on, keeping pre-drift seeds byte-identical.
			Schedule: klotski.FaultScheduleOptions{Faults: *chaosFaults, Telemetry: *driftThreshold > 0},
			Run: klotski.ControlOptions{
				Config:           cfg,
				DriftThreshold:   *driftThreshold,
				GapSkipThreshold: *gapSkip,
				DemandMargin:     *demandMargin,
			},
		})
		if err != nil {
			return fmt.Errorf("chaos campaign: %w", err)
		}
		fmt.Fprintln(stderr, rep)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := res.Document.Encode(out); err != nil {
		return err
	}
	if *gapMax >= 0 {
		if g := res.Plan.Metrics.OptimalityGap; g > *gapMax {
			return fmt.Errorf("certified optimality gap %.4f exceeds -gap-max %g (incumbent %g, lower bound %g)",
				g, *gapMax, res.Plan.Metrics.IncumbentCost, res.Plan.Metrics.LowerBound)
		}
	}
	return nil
}

// fleetManifest is the -fleet input: a set of NPD-backed members planned
// concurrently under one shared worker pool.
type fleetManifest struct {
	Members []fleetManifestMember `json:"members"`
}

type fleetManifestMember struct {
	Name     string `json:"name"`
	NPD      string `json:"npd"`
	Planner  string `json:"planner,omitempty"`  // astar (default) or dp
	Priority int    `json:"priority,omitempty"` // higher preempts lower
	MinShare int    `json:"min_share,omitempty"`
	MaxShare int    `json:"max_share,omitempty"`
}

// fleetMemberOut is one member's row in the emitted fleet report.
type fleetMemberOut struct {
	Name        string  `json:"name"`
	Completed   bool    `json:"completed"`
	Actions     int     `json:"actions,omitempty"`
	Cost        float64 `json:"cost,omitempty"`
	Gap         float64 `json:"gap"`
	Preemptions int     `json:"preemptions"`
	WaitMS      int64   `json:"wait_ms"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	Error       string  `json:"error,omitempty"`
}

// fleetOut is the emitted fleet report document.
type fleetOut struct {
	Members     []fleetMemberOut `json:"members"`
	Completed   int              `json:"completed"`
	Failed      int              `json:"failed"`
	Admitted    int              `json:"admitted"`
	Preemptions int              `json:"preemptions"`
	CrossHits   int              `json:"cross_plan_cut_hits"`
	TotalCost   float64          `json:"total_cost"`
	MakespanMS  int64            `json:"makespan_ms"`
}

// runFleet loads every manifest member's NPD scenario, plans the fleet
// concurrently under a shared pool, prints the one-line summary to
// stderr, and writes the JSON fleet report to -o (default stdout). Any
// member failure makes the exit status non-zero after the report is
// written. An interrupted fleet (SIGINT/SIGTERM, -timeout) still writes
// the report, and — with ckptDir set — first seals every interrupted
// member's best safe partial sequence, so stopping a fleet run preserves
// all members' work, not just one plan's.
func runFleet(ctx context.Context, manifestPath string, workers int, noSharedCuts bool, ckptDir string, opts klotski.Options, outPath string, stdout, stderr io.Writer, rec *klotski.ObsRecorder) error {
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	var manifest fleetManifest
	if err := json.Unmarshal(data, &manifest); err != nil {
		return fmt.Errorf("%s: %w", manifestPath, err)
	}
	if len(manifest.Members) == 0 {
		return fmt.Errorf("%s: fleet manifest has no members", manifestPath)
	}

	members := make([]klotski.FleetMember, len(manifest.Members))
	for i, m := range manifest.Members {
		if m.NPD == "" {
			return fmt.Errorf("%s: member %d (%q) has no npd path", manifestPath, i, m.Name)
		}
		f, err := os.Open(m.NPD)
		if err != nil {
			return err
		}
		doc, err := klotski.LoadNPD(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", m.NPD, err)
		}
		scenario, err := doc.Scenario()
		if err != nil {
			return fmt.Errorf("%s: %w", m.NPD, err)
		}
		task := scenario.Task
		if doc.Migration != nil && doc.Migration.BlockFactor > 0 && doc.Migration.BlockFactor != 1 {
			if task, err = klotski.Reblock(task, doc.Migration.BlockFactor); err != nil {
				return fmt.Errorf("%s: %w", m.NPD, err)
			}
		}
		name := m.Name
		if name == "" {
			name = doc.Name
		}
		members[i] = klotski.FleetMember{
			Name:     name,
			Task:     task,
			Planner:  klotski.FleetPlanner(m.Planner),
			Options:  opts,
			Priority: m.Priority,
			MinShare: m.MinShare,
			MaxShare: m.MaxShare,
		}
	}

	pool := klotski.NewWorkerPool(workers, rec)
	defer pool.Close()
	rep, fleetErr := klotski.PlanFleet(ctx, members, klotski.FleetOptions{
		Pool:         pool,
		NoSharedCuts: noSharedCuts,
		Recorder:     rec,
	})
	if rep == nil {
		return fleetErr
	}
	fmt.Fprintln(stderr, rep)
	// A cancelled fleet (or a member that hit its own budget) stops every
	// planner at a checkpoint instead of discarding its work; seal them
	// all before reporting, so the -resume/-executed flow can pick each
	// member back up.
	checkpointFleetMembers(rep, ckptDir, opts, stderr)

	out := fleetOut{
		Completed:   rep.Completed,
		Failed:      rep.Failed,
		Admitted:    rep.Admitted,
		Preemptions: rep.Preemptions,
		CrossHits:   rep.CrossHits,
		TotalCost:   rep.TotalCost,
		MakespanMS:  rep.Makespan.Milliseconds(),
	}
	failed := 0
	for i := range rep.Members {
		m := &rep.Members[i]
		row := fleetMemberOut{
			Name:        m.Name,
			Preemptions: m.Preemptions,
			WaitMS:      m.Wait.Milliseconds(),
			ElapsedMS:   m.Elapsed.Milliseconds(),
		}
		if m.Err != nil {
			row.Error = m.Err.Error()
			failed++
		} else if m.Plan != nil {
			row.Completed = true
			row.Actions = len(m.Plan.Sequence)
			row.Cost = m.Plan.Cost
			row.Gap = m.Plan.Metrics.OptimalityGap
		}
		out.Members = append(out.Members, row)
	}

	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if fleetErr != nil {
		return fleetErr
	}
	if failed > 0 {
		return fmt.Errorf("fleet: %d of %d members failed", failed, len(rep.Members))
	}
	return nil
}

// checkpointFleetMembers seals the best safe partial sequence of every
// interrupted fleet member into dir — one klotski/plan envelope per
// member, named <member>.ckpt.json — mirroring what -checkpoint does for
// a single plan. Members that failed for non-checkpoint reasons are
// skipped; write failures are reported to stderr and do not mask the
// interruption itself (the member's journal of record is the fleet
// report). Returns how many envelopes were written.
func checkpointFleetMembers(rep *klotski.FleetReport, dir string, opts klotski.Options, stderr io.Writer) int {
	if dir == "" {
		return 0
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, "klotski: creating -fleet-checkpoint-dir:", err)
		return 0
	}
	written := 0
	for i := range rep.Members {
		m := &rep.Members[i]
		var interrupted *klotski.Interrupted
		if m.Err == nil || !errors.As(m.Err, &interrupted) {
			continue
		}
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("member-%d", i)
		}
		path := filepath.Join(dir, fleetCheckpointName(name))
		n, werr := writeCheckpoint(path, interrupted, opts)
		if werr != nil {
			fmt.Fprintf(stderr, "klotski: checkpointing fleet member %q: %v\n", name, werr)
			continue
		}
		fmt.Fprintf(stderr, "fleet member %q interrupted (%v); %d safe actions checkpointed to %s\n",
			name, interrupted.Reason, n, path)
		written++
	}
	return written
}

// fleetCheckpointName maps a manifest member name to its checkpoint file
// name, flattening path separators so a creative member name cannot
// escape the checkpoint directory.
func fleetCheckpointName(name string) string {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\':
			return '_'
		}
		return r
	}, name)
	return clean + ".ckpt.json"
}

// writeStats dumps the registry's JSON snapshot to path.
func writeStats(path string, reg *klotski.ObsRegistry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serveDebug starts the expvar + pprof debug server on addr, printing the
// resolved listen address to stderr (addr may use port 0). The returned
// stop function closes the listener; in-flight requests are abandoned —
// the process is exiting anyway.
func serveDebug(addr string, reg *klotski.ObsRegistry, stderr io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg.PublishExpvar("klotski")
	fmt.Fprintf(stderr, "debug server listening on http://%s (expvar at /debug/vars, pprof at /debug/pprof/)\n", ln.Addr())
	srv := &http.Server{Handler: reg.DebugHandler()}
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}

// writeCheckpoint renders the interrupted search's best partial sequence
// as a plan document so the -resume/-executed flow accepts it, with the
// planner's interruption details under an extra "checkpoint" key.
//
// The search only verifies states at run boundaries, but an operator who
// executes the partial sequence and pauses there makes its endpoint an
// observable network state — so the partial is first trimmed to the
// longest prefix whose paused state satisfies the constraints.
func writeCheckpoint(path string, interrupted *klotski.Interrupted, opts klotski.Options) (int, error) {
	cp := interrupted.Checkpoint
	if cp == nil {
		return 0, fmt.Errorf("planner returned no checkpoint")
	}
	task := cp.Task()
	partial := append([]int(nil), cp.Partial...)
	for len(partial) > 0 {
		counts := make([]int, len(task.Types))
		for _, b := range partial {
			counts[task.Blocks[b].Type]++
		}
		if klotski.CheckState(task, counts, opts) == nil {
			break
		}
		partial = partial[:len(partial)-1]
	}
	pd := &klotski.PlanDocument{
		Version: npd.Version,
		Task:    task.Name,
		Theta:   opts.Theta,
		Alpha:   opts.Alpha,
		Actions: len(partial),
	}
	for i, run := range klotski.RunsOf(task, partial, 0) {
		info := task.Types[run.Type]
		names := make([]string, len(run.Blocks))
		for j, b := range run.Blocks {
			names[j] = task.Blocks[b].Name
		}
		pd.Phases = append(pd.Phases, klotski.PlanPhase{
			Index: i, ActionType: info.Name, Op: info.Op.String(), Blocks: names,
		})
	}
	doc := struct {
		*klotski.PlanDocument
		Checkpoint struct {
			Planner string          `json:"planner"`
			Reason  string          `json:"reason"`
			Counts  []int           `json:"counts"`
			Metrics klotski.Metrics `json:"metrics"`
		} `json:"checkpoint"`
	}{PlanDocument: pd}
	doc.Checkpoint.Planner = cp.Planner
	doc.Checkpoint.Reason = interrupted.Reason.Error()
	doc.Checkpoint.Counts = cp.Counts
	doc.Checkpoint.Metrics = cp.Metrics

	data, err := npd.SealValue(planFormat, &doc)
	if err != nil {
		return 0, err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	return len(partial), nil
}

// planFormat tags sealed plan/checkpoint envelopes so a sealed file of
// some other kind is rejected by name instead of misparsed.
const planFormat = "klotski/plan"

// writeFileAtomic writes data to path via temp file + fsync + rename, so
// a crash mid-write leaves either the old file or the new one — never a
// torn hybrid at the final path.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readPlanDocument reads a plan document from path, accepting both the
// sealed envelope (checkpoints) and bare plan JSON, verifying version and
// checksum when sealed.
func readPlanDocument(path string) (*npd.PlanDocument, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if npd.IsSealed(data) {
		payload, err := npd.OpenSealed(planFormat, data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		data = payload
	}
	return npd.DecodePlan(bytes.NewReader(data))
}

// documentSequence maps a plan document's phase block names back onto the
// scenario task's block IDs, in plan order.
func documentSequence(task *klotski.Task, docName string, prev *npd.PlanDocument) ([]int, error) {
	byName := make(map[string]int, len(task.Blocks))
	for i := range task.Blocks {
		byName[task.Blocks[i].Name] = i
	}
	var seq []int
	for _, ph := range prev.Phases {
		for _, name := range ph.Blocks {
			id, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("plan block %q not found in scenario %q — was the NPD document edited?", name, docName)
			}
			seq = append(seq, id)
		}
	}
	return seq, nil
}

// auditDocument independently verifies a plan or checkpoint document
// against the NPD scenario: the full sequence is replayed on a pristine
// serial evaluator and every observable boundary state is checked. A
// checkpoint's partial sequence is audited with its endpoint as the final
// observable state.
func auditDocument(doc *klotski.NPDDocument, cfg klotski.PipelineConfig, planPath string, stderr io.Writer) error {
	prev, err := readPlanDocument(planPath)
	if err != nil {
		return err
	}
	scenario, err := doc.Scenario()
	if err != nil {
		return err
	}
	task := scenario.Task
	seq, err := documentSequence(task, doc.Name, prev)
	if err != nil {
		return err
	}
	opts := cfg.Options
	if opts.Theta <= 0 {
		opts.Theta = prev.Theta
	}
	if opts.Alpha == 0 {
		opts.Alpha = prev.Alpha
	}
	freeOrder := cfg.Planner == klotski.PlannerMRC || cfg.Planner == klotski.PlannerJanus
	var rep *klotski.AuditReport
	if len(seq) < task.NumActions() {
		rep, err = klotski.AuditPartialPlan(task, seq, opts, freeOrder)
	} else {
		rep, err = klotski.AuditPlan(task, seq, opts, freeOrder)
	}
	if err != nil {
		return err
	}
	if !rep.Passed {
		fmt.Fprintf(stderr, "audit FAILED: %s\n", rep)
		return fmt.Errorf("audit of %s failed at step %d: %s", planPath, rep.FailStep, rep.Reason)
	}
	fmt.Fprintf(stderr, "audit passed: %s: %d actions, %d states checked, worst utilization %.4f\n",
		planPath, len(seq), rep.StatesChecked, rep.WorstUtil)
	return nil
}

// replanFromDocument rebuilds the scenario from the NPD document, replays
// the first n actions of the earlier plan document, and re-plans the
// remainder.
func replanFromDocument(ctx context.Context, doc *klotski.NPDDocument, cfg klotski.PipelineConfig, planPath string, n int) (*klotski.PipelineResult, error) {
	prev, err := readPlanDocument(planPath)
	if err != nil {
		return nil, err
	}
	scenario, err := doc.Scenario()
	if err != nil {
		return nil, err
	}
	task := scenario.Task
	executed, err := documentSequence(task, doc.Name, prev)
	if err != nil {
		return nil, err
	}
	if len(executed) < n {
		return nil, fmt.Errorf("-executed %d exceeds the %d actions in %s", n, len(executed), planPath)
	}
	executed = executed[:n]
	plan, err := klotski.ReplanMigrationContext(ctx, task, executed, nil, cfg)
	if err != nil {
		return nil, err
	}
	planDoc, err := npd.BuildPlanDocumentFrom(task, executed, plan, cfg.Options)
	if err != nil {
		return nil, err
	}
	return &klotski.PipelineResult{Scenario: scenario, Task: task, Plan: plan, Document: planDoc}, nil
}
