package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testNPD = `{
	"version": 1,
	"name": "cmd-test",
	"fabric": [{"dc": 0, "pods": 2, "rswPerPod": 2, "planes": 4, "sswPerPlane": 2, "fswUplinks": 1}],
	"hgrid": {"grids": 4, "faduPerGrid": 2, "fauuPerGrid": 1, "sswDownlinks": 1},
	"eb": {"count": 2, "linkTbps": 40},
	"dr": {"count": 1, "linkTbps": 80},
	"bb": {"ebbs": 1},
	"migration": {"kind": "hgrid-v1-v2"}
}`

func writeNPD(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "region.json")
	if err := os.WriteFile(p, []byte(testNPD), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPlansDocument(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-v"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc["task"] != "cmd-test" {
		t.Errorf("plan document task = %v", doc["task"])
	}
	if !strings.Contains(errBuf.String(), "planned in") {
		t.Errorf("verbose output missing: %s", errBuf.String())
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	npdPath := writeNPD(t)
	outPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", outPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"phases"`) {
		t.Error("plan file missing phases")
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -o is set")
	}
}

func TestRunResume(t *testing.T) {
	npdPath := writeNPD(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"-npd", npdPath, "-resume", planPath, "-executed", "2"}, &out, &errBuf); err != nil {
		t.Fatalf("resume: %v", err)
	}
	var doc struct {
		Actions int `json:"actions"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Actions != 6 { // 8 total actions, 2 executed
		t.Errorf("resumed plan has %d actions, want 6", doc.Actions)
	}
}

func TestRunResumeTooManyExecuted(t *testing.T) {
	npdPath := writeNPD(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-npd", npdPath, "-resume", planPath, "-executed", "99"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want exceeds error, got %v", err)
	}
}

// TestRunCheckpointOnTimeout: an expired planning budget must leave a
// checkpoint document that the -resume/-executed flow accepts.
func TestRunCheckpointOnTimeout(t *testing.T) {
	npdPath := writeNPD(t)
	ckptPath := filepath.Join(t.TempDir(), "ckpt.json")
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-npd", npdPath, "-timeout", "1ns", "-checkpoint", ckptPath}, &out, &errBuf)
	if err == nil {
		t.Fatal("1ns budget should interrupt planning")
	}
	if !strings.Contains(errBuf.String(), "checkpointed to") {
		t.Fatalf("stderr missing checkpoint notice: %s", errBuf.String())
	}
	data, rerr := os.ReadFile(ckptPath)
	if rerr != nil {
		t.Fatalf("checkpoint file not written: %v", rerr)
	}
	var doc struct {
		Version    int `json:"version"`
		Actions    int `json:"actions"`
		Checkpoint struct {
			Planner string `json:"planner"`
			Reason  string `json:"reason"`
		} `json:"checkpoint"`
	}
	if jerr := json.Unmarshal(data, &doc); jerr != nil {
		t.Fatalf("checkpoint is not JSON: %v", jerr)
	}
	if doc.Version != 1 || doc.Checkpoint.Planner != "astar" || doc.Checkpoint.Reason == "" {
		t.Errorf("checkpoint fields: %+v", doc)
	}
	// The checkpoint must be consumable by -resume with its own action count.
	out.Reset()
	if err := run(context.Background(), []string{"-npd", npdPath, "-resume", ckptPath, "-executed", fmt.Sprint(doc.Actions)}, &out, &errBuf); err != nil {
		t.Fatalf("resume from checkpoint: %v", err)
	}
}

// TestRunCancelledContext: SIGINT surfaces as a cancelled context; run must
// stop with the context error rather than plan on.
func TestRunCancelledContext(t *testing.T) {
	npdPath := writeNPD(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	err := run(ctx, []string{"-npd", npdPath}, &out, &errBuf)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunChaosCampaign: -chaos N drives the plan through the control loop
// and prints a campaign summary.
func TestRunChaosCampaign(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-chaos", "2", "-chaos-faults", "2", "-chaos-seed", "5"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "chaos campaign over 2 seeds") {
		t.Errorf("missing chaos campaign report: %s", errBuf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), nil, &out, &errBuf); err == nil {
		t.Error("missing -npd should error")
	}
	if err := run(context.Background(), []string{"-npd", "/does/not/exist.json"}, &out, &errBuf); err == nil {
		t.Error("missing file should error")
	}
	npdPath := writeNPD(t)
	if err := run(context.Background(), []string{"-npd", npdPath, "-planner", "bogus"}, &out, &errBuf); err == nil {
		t.Error("unknown planner should error")
	}
}

func TestRunPlannerVariants(t *testing.T) {
	npdPath := writeNPD(t)
	for _, planner := range []string{"astar", "dp", "mrc", "janus"} {
		var out, errBuf bytes.Buffer
		if err := run(context.Background(), []string{"-npd", npdPath, "-planner", planner}, &out, &errBuf); err != nil {
			t.Errorf("planner %s: %v", planner, err)
		}
	}
}

func TestRunMaxRun(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-maxrun", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Phases []struct {
			Blocks []string `json:"blocks"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for i, ph := range doc.Phases {
		if len(ph.Blocks) > 1 {
			t.Errorf("phase %d has %d blocks despite -maxrun 1", i, len(ph.Blocks))
		}
	}
}
