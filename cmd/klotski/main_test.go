package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testNPD = `{
	"version": 1,
	"name": "cmd-test",
	"fabric": [{"dc": 0, "pods": 2, "rswPerPod": 2, "planes": 4, "sswPerPlane": 2, "fswUplinks": 1}],
	"hgrid": {"grids": 4, "faduPerGrid": 2, "fauuPerGrid": 1, "sswDownlinks": 1},
	"eb": {"count": 2, "linkTbps": 40},
	"dr": {"count": 1, "linkTbps": 80},
	"bb": {"ebbs": 1},
	"migration": {"kind": "hgrid-v1-v2"}
}`

func writeNPD(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "region.json")
	if err := os.WriteFile(p, []byte(testNPD), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPlansDocument(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-npd", npdPath, "-v"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc["task"] != "cmd-test" {
		t.Errorf("plan document task = %v", doc["task"])
	}
	if !strings.Contains(errBuf.String(), "planned in") {
		t.Errorf("verbose output missing: %s", errBuf.String())
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	npdPath := writeNPD(t)
	outPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-npd", npdPath, "-o", outPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"phases"`) {
		t.Error("plan file missing phases")
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -o is set")
	}
}

func TestRunResume(t *testing.T) {
	npdPath := writeNPD(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-npd", npdPath, "-resume", planPath, "-executed", "2"}, &out, &errBuf); err != nil {
		t.Fatalf("resume: %v", err)
	}
	var doc struct {
		Actions int `json:"actions"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Actions != 6 { // 8 total actions, 2 executed
		t.Errorf("resumed plan has %d actions, want 6", doc.Actions)
	}
}

func TestRunResumeTooManyExecuted(t *testing.T) {
	npdPath := writeNPD(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-npd", npdPath, "-resume", planPath, "-executed", "99"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want exceeds error, got %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Error("missing -npd should error")
	}
	if err := run([]string{"-npd", "/does/not/exist.json"}, &out, &errBuf); err == nil {
		t.Error("missing file should error")
	}
	npdPath := writeNPD(t)
	if err := run([]string{"-npd", npdPath, "-planner", "bogus"}, &out, &errBuf); err == nil {
		t.Error("unknown planner should error")
	}
}

func TestRunPlannerVariants(t *testing.T) {
	npdPath := writeNPD(t)
	for _, planner := range []string{"astar", "dp", "mrc", "janus"} {
		var out, errBuf bytes.Buffer
		if err := run([]string{"-npd", npdPath, "-planner", planner}, &out, &errBuf); err != nil {
			t.Errorf("planner %s: %v", planner, err)
		}
	}
}

func TestRunMaxRun(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-npd", npdPath, "-maxrun", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Phases []struct {
			Blocks []string `json:"blocks"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for i, ph := range doc.Phases {
		if len(ph.Blocks) > 1 {
			t.Errorf("phase %d has %d blocks despite -maxrun 1", i, len(ph.Blocks))
		}
	}
}
