package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"klotski"
	"klotski/internal/npd"
)

const testNPD = `{
	"version": 1,
	"name": "cmd-test",
	"fabric": [{"dc": 0, "pods": 2, "rswPerPod": 2, "planes": 4, "sswPerPlane": 2, "fswUplinks": 1}],
	"hgrid": {"grids": 4, "faduPerGrid": 2, "fauuPerGrid": 1, "sswDownlinks": 1},
	"eb": {"count": 2, "linkTbps": 40},
	"dr": {"count": 1, "linkTbps": 80},
	"bb": {"ebbs": 1},
	"migration": {"kind": "hgrid-v1-v2"}
}`

func writeNPD(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "region.json")
	if err := os.WriteFile(p, []byte(testNPD), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPlansDocument(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-v"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc["task"] != "cmd-test" {
		t.Errorf("plan document task = %v", doc["task"])
	}
	if !strings.Contains(errBuf.String(), "planned in") {
		t.Errorf("verbose output missing: %s", errBuf.String())
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	npdPath := writeNPD(t)
	outPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", outPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"phases"`) {
		t.Error("plan file missing phases")
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -o is set")
	}
}

func TestRunResume(t *testing.T) {
	npdPath := writeNPD(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"-npd", npdPath, "-resume", planPath, "-executed", "2"}, &out, &errBuf); err != nil {
		t.Fatalf("resume: %v", err)
	}
	var doc struct {
		Actions int `json:"actions"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Actions != 6 { // 8 total actions, 2 executed
		t.Errorf("resumed plan has %d actions, want 6", doc.Actions)
	}
}

func TestRunResumeTooManyExecuted(t *testing.T) {
	npdPath := writeNPD(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-npd", npdPath, "-resume", planPath, "-executed", "99"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want exceeds error, got %v", err)
	}
}

// TestRunCheckpointOnTimeout: an expired planning budget must leave a
// checkpoint document that the -resume/-executed flow accepts.
func TestRunCheckpointOnTimeout(t *testing.T) {
	npdPath := writeNPD(t)
	ckptPath := filepath.Join(t.TempDir(), "ckpt.json")
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-npd", npdPath, "-timeout", "1ns", "-checkpoint", ckptPath}, &out, &errBuf)
	if err == nil {
		t.Fatal("1ns budget should interrupt planning")
	}
	if !strings.Contains(errBuf.String(), "checkpointed to") {
		t.Fatalf("stderr missing checkpoint notice: %s", errBuf.String())
	}
	data, rerr := os.ReadFile(ckptPath)
	if rerr != nil {
		t.Fatalf("checkpoint file not written: %v", rerr)
	}
	if !npd.IsSealed(data) {
		t.Fatalf("checkpoint is not in the sealed envelope: %s", data)
	}
	payload, serr := npd.OpenSealed("klotski/plan", data)
	if serr != nil {
		t.Fatalf("checkpoint envelope does not verify: %v", serr)
	}
	var doc struct {
		Version    int `json:"version"`
		Actions    int `json:"actions"`
		Checkpoint struct {
			Planner string `json:"planner"`
			Reason  string `json:"reason"`
		} `json:"checkpoint"`
	}
	if jerr := json.Unmarshal(payload, &doc); jerr != nil {
		t.Fatalf("checkpoint payload is not JSON: %v", jerr)
	}
	if doc.Version != 1 || doc.Checkpoint.Planner != "astar" || doc.Checkpoint.Reason == "" {
		t.Errorf("checkpoint fields: %+v", doc)
	}
	// The checkpoint must be consumable by -resume with its own action count.
	out.Reset()
	if err := run(context.Background(), []string{"-npd", npdPath, "-resume", ckptPath, "-executed", fmt.Sprint(doc.Actions)}, &out, &errBuf); err != nil {
		t.Fatalf("resume from checkpoint: %v", err)
	}
	// And its partial sequence must pass the offline audit.
	errBuf.Reset()
	if err := run(context.Background(), []string{"-npd", npdPath, "-audit", ckptPath}, &out, &errBuf); err != nil {
		t.Fatalf("-audit on checkpoint: %v (stderr: %s)", err, errBuf.String())
	}
}

// TestRunCancelledContext: SIGINT surfaces as a cancelled context; run must
// stop with the context error rather than plan on.
func TestRunCancelledContext(t *testing.T) {
	npdPath := writeNPD(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	err := run(ctx, []string{"-npd", npdPath}, &out, &errBuf)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunChaosCampaign: -chaos N drives the plan through the control loop
// and prints a campaign summary.
func TestRunChaosCampaign(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-chaos", "2", "-chaos-faults", "2", "-chaos-seed", "5"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "chaos campaign over 2 seeds") {
		t.Errorf("missing chaos campaign report: %s", errBuf.String())
	}
}

// TestRunStatsOut: -stats-out must leave a JSON snapshot with nonzero
// planner effort — states expanded, check-latency buckets, and cache
// hit/miss counts (the acceptance criteria of the observability layer).
func TestRunStatsOut(t *testing.T) {
	npdPath := writeNPD(t)
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var out, errBuf bytes.Buffer
	// The DP planner revisits boundary states across last-action types, so
	// even this small topology exercises both cache hits and misses.
	if err := run(context.Background(), []string{"-npd", npdPath, "-planner", "dp", "-stats-out", statsPath}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats file not written: %v", err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count int64   `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
		Derived map[string]float64 `json:"derived"`
		Spans   map[string]any     `json:"spans"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("stats file is not JSON: %v", err)
	}
	if snap.Counters["planner.states_expanded"] == 0 {
		t.Errorf("states_expanded = 0; counters: %v", snap.Counters)
	}
	if snap.Counters["planner.cache_hits"] == 0 || snap.Counters["planner.cache_misses"] == 0 {
		t.Errorf("cache counters missing: %v", snap.Counters)
	}
	if _, ok := snap.Derived["planner.cache_hit_rate"]; !ok {
		t.Errorf("derived cache_hit_rate missing: %v", snap.Derived)
	}
	lat := snap.Histograms["planner.check_latency_seconds"]
	if lat.Count == 0 || len(lat.Buckets) == 0 {
		t.Errorf("check-latency histogram empty: %+v", lat)
	}
	if _, ok := snap.Spans["planner.dp.sweep"]; !ok {
		t.Errorf("dp.sweep span missing: %v", snap.Spans)
	}
	if _, ok := snap.Spans["planner.pipeline.plan"]; !ok {
		t.Errorf("pipeline.plan span missing: %v", snap.Spans)
	}
	// Defense-in-depth instruments: the automatic post-planning audit must
	// have replayed boundary states, recorded no failures, and the lane-
	// panic degradation counter must be exported (zero on a healthy run).
	if snap.Counters["audit.steps_checked"] == 0 {
		t.Errorf("audit.steps_checked = 0; the post-planning audit did not run: %v", snap.Counters)
	}
	if snap.Counters["audit.failures"] != 0 {
		t.Errorf("audit.failures = %d on a healthy run", snap.Counters["audit.failures"])
	}
	if _, ok := snap.Counters["planner.lane_panics_degraded"]; !ok {
		t.Errorf("planner.lane_panics_degraded not exported: %v", snap.Counters)
	}
	if _, ok := snap.Spans["planner.audit.verify"]; !ok {
		t.Errorf("audit.verify span missing: %v", snap.Spans)
	}
}

// TestRunAuditMode: -audit independently verifies an emitted plan
// document, and rejects a tampered one with the offending step.
func TestRunAuditMode(t *testing.T) {
	npdPath := writeNPD(t)
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatalf("planning: %v (stderr: %s)", err, errBuf.String())
	}

	errBuf.Reset()
	if err := run(context.Background(), []string{"-npd", npdPath, "-audit", planPath}, &out, &errBuf); err != nil {
		t.Fatalf("-audit on a valid plan: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "audit passed") {
		t.Errorf("missing audit verdict: %s", errBuf.String())
	}

	// Tamper: re-inject an already-executed block into the final phase.
	data, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc klotski.PlanDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Phases) == 0 || len(doc.Phases[0].Blocks) == 0 {
		t.Fatal("plan document has no phases to tamper with")
	}
	lastPh := &doc.Phases[len(doc.Phases)-1]
	lastPh.Blocks = append(lastPh.Blocks, doc.Phases[0].Blocks[0])
	tamperedPath := filepath.Join(dir, "tampered.json")
	tampered, err := json.Marshal(&doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tamperedPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	errBuf.Reset()
	err = run(context.Background(), []string{"-npd", npdPath, "-audit", tamperedPath}, &out, &errBuf)
	if err == nil {
		t.Fatal("-audit accepted a tampered plan")
	}
	if !strings.Contains(err.Error(), "failed at step") {
		t.Errorf("tamper verdict should name the step: %v", err)
	}
}

// TestRunAuditRejectsCorruptSealedFile: a sealed document whose payload
// was altered after sealing must be refused by checksum, not misparsed.
func TestRunAuditRejectsCorruptSealedFile(t *testing.T) {
	npdPath := writeNPD(t)
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-o", planPath}, &out, &errBuf); err != nil {
		t.Fatalf("planning: %v", err)
	}
	plain, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := npd.Seal("klotski/plan", plain)
	if err != nil {
		t.Fatal(err)
	}
	sealedPath := filepath.Join(dir, "sealed.json")
	if err := os.WriteFile(sealedPath, sealed, 0o644); err != nil {
		t.Fatal(err)
	}
	// The intact sealed document audits like the plain one.
	if err := run(context.Background(), []string{"-npd", npdPath, "-audit", sealedPath}, &out, &errBuf); err != nil {
		t.Fatalf("-audit on sealed plan: %v", err)
	}
	// Corrupt one payload byte inside the envelope.
	corrupt := bytes.Replace(sealed, []byte(`\"cost\"`), []byte(`\"c0st\"`), 1)
	if bytes.Equal(corrupt, sealed) {
		// Payload is embedded as raw JSON, not escaped; try unescaped form.
		corrupt = bytes.Replace(sealed, []byte(`"cost"`), []byte(`"c0st"`), 1)
	}
	if bytes.Equal(corrupt, sealed) {
		t.Fatal("corruption target not found in sealed envelope")
	}
	corruptPath := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), []string{"-npd", npdPath, "-audit", corruptPath}, &out, &errBuf)
	if err == nil {
		t.Fatal("corrupt sealed document accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption should be refused by checksum: %v", err)
	}
}

// TestRunDebugAddr: -debug-addr announces the listen address on stderr and
// planning completes with the server up (the server stops when run returns).
func TestRunDebugAddr(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-debug-addr", "127.0.0.1:0"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "debug server listening on http://127.0.0.1:") {
		t.Errorf("debug address not announced: %s", errBuf.String())
	}
}

// TestServeDebug probes the live debug surface directly: /debug/vars must
// carry the published registry variable and /debug/pprof/ must serve the
// profile index.
func TestServeDebug(t *testing.T) {
	reg := klotski.DefaultObsRegistry()
	klotski.NewObsRecorder(reg).StateCreated()
	var errBuf bytes.Buffer
	stop, err := serveDebug("127.0.0.1:0", reg, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	m := regexp.MustCompile(`http://([^ ]+) `).FindStringSubmatch(errBuf.String())
	if m == nil {
		t.Fatalf("no address announced: %s", errBuf.String())
	}
	for path, want := range map[string]string{
		"/debug/vars":   `"klotski"`,
		"/debug/pprof/": "goroutine",
		"/":             "planner.states_created",
	} {
		resp, err := http.Get("http://" + m[1] + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Errorf("GET %s: status %d, body missing %q", path, resp.StatusCode, want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), nil, &out, &errBuf); err == nil {
		t.Error("missing -npd should error")
	}
	if err := run(context.Background(), []string{"-npd", "/does/not/exist.json"}, &out, &errBuf); err == nil {
		t.Error("missing file should error")
	}
	npdPath := writeNPD(t)
	if err := run(context.Background(), []string{"-npd", npdPath, "-planner", "bogus"}, &out, &errBuf); err == nil {
		t.Error("unknown planner should error")
	}
}

func TestRunPlannerVariants(t *testing.T) {
	npdPath := writeNPD(t)
	for _, planner := range []string{"astar", "dp", "mrc", "janus"} {
		var out, errBuf bytes.Buffer
		if err := run(context.Background(), []string{"-npd", npdPath, "-planner", planner}, &out, &errBuf); err != nil {
			t.Errorf("planner %s: %v", planner, err)
		}
	}
}

func TestRunMaxRun(t *testing.T) {
	npdPath := writeNPD(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-npd", npdPath, "-maxrun", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Phases []struct {
			Blocks []string `json:"blocks"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for i, ph := range doc.Phases {
		if len(ph.Blocks) > 1 {
			t.Errorf("phase %d has %d blocks despite -maxrun 1", i, len(ph.Blocks))
		}
	}
}

func writeFleetManifest(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	npdPath := filepath.Join(dir, "region.json")
	if err := os.WriteFile(npdPath, []byte(testNPD), 0o644); err != nil {
		t.Fatal(err)
	}
	var manifest fleetManifest
	for _, name := range names {
		manifest.Members = append(manifest.Members, fleetManifestMember{Name: name, NPD: npdPath})
	}
	data, err := json.Marshal(manifest)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunFleet(t *testing.T) {
	manifest := writeFleetManifest(t, "east", "west")
	outPath := filepath.Join(t.TempDir(), "report.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-fleet", manifest, "-o", outPath}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep fleetOut
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("fleet report is not JSON: %v", err)
	}
	if rep.Completed != 2 || rep.Failed != 0 || len(rep.Members) != 2 {
		t.Fatalf("fleet report: %+v", rep)
	}
	for _, m := range rep.Members {
		if !m.Completed || m.Actions == 0 {
			t.Errorf("member %q did not complete: %+v", m.Name, m)
		}
	}
}

// TestRunFleetCancelledCheckpointsAllMembers: SIGTERM/SIGINT surface as a
// cancelled context; a fleet run must stop every member at a planner
// checkpoint, seal ALL of them into -fleet-checkpoint-dir (not just one
// plan's, which is all the single-plan -checkpoint flow covers), still
// write the fleet report, and exit nonzero.
func TestRunFleetCancelledCheckpointsAllMembers(t *testing.T) {
	manifest := writeFleetManifest(t, "east", "west")
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpts")
	outPath := filepath.Join(dir, "report.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	err := run(ctx, []string{
		"-fleet", manifest, "-fleet-checkpoint-dir", ckptDir, "-o", outPath,
	}, &out, &errBuf)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (stderr: %s)", err, errBuf.String())
	}

	// Every member's checkpoint is sealed under the expected name and
	// opens as a klotski/plan envelope carrying the interruption details.
	for _, name := range []string{"east", "west"} {
		path := filepath.Join(ckptDir, name+".ckpt.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("member %q checkpoint: %v (stderr: %s)", name, err, errBuf.String())
		}
		payload, err := npd.OpenSealed(planFormat, data)
		if err != nil {
			t.Fatalf("member %q checkpoint envelope: %v", name, err)
		}
		var doc struct {
			Task       string `json:"task"`
			Checkpoint struct {
				Planner string `json:"planner"`
				Reason  string `json:"reason"`
			} `json:"checkpoint"`
		}
		if err := json.Unmarshal(payload, &doc); err != nil {
			t.Fatalf("member %q checkpoint payload: %v", name, err)
		}
		if doc.Task != "cmd-test" || doc.Checkpoint.Planner == "" {
			t.Errorf("member %q checkpoint document: %+v", name, doc)
		}
		if !strings.Contains(doc.Checkpoint.Reason, "context canceled") {
			t.Errorf("member %q checkpoint reason %q, want context cancellation", name, doc.Checkpoint.Reason)
		}
	}
	if got := strings.Count(errBuf.String(), "checkpointed to"); got != 2 {
		t.Errorf("stderr reports %d member checkpoints, want 2:\n%s", got, errBuf.String())
	}

	// The fleet report is still written on the interrupted path.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("fleet report after cancellation: %v", err)
	}
	var rep fleetOut
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("fleet report is not JSON: %v", err)
	}
	if len(rep.Members) != 2 || rep.Completed != 0 {
		t.Errorf("interrupted fleet report: %+v", rep)
	}
}

// TestFleetCheckpointName: member names cannot escape the checkpoint dir.
func TestFleetCheckpointName(t *testing.T) {
	if got := fleetCheckpointName("../../etc/passwd"); strings.Contains(got, "/") || strings.Contains(got, "\\") {
		t.Errorf("fleetCheckpointName left separators in %q", got)
	}
	if got := fleetCheckpointName("east"); got != "east.ckpt.json" {
		t.Errorf("fleetCheckpointName(east) = %q", got)
	}
}
