package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "table1,table3", "-scale", "0.1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 3", "HGRID", "E-SSW"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "table3", "-scale", "0.1", "-json"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.Unmarshal(out.Bytes(), &payload); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if _, ok := payload["table3"]; !ok {
		t.Error("JSON missing table3 key")
	}
}

func TestRunFigure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "fig12", "-scale", "0.1", "-timeout", "30s"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 12") || !strings.Contains(out.String(), "Klotski-A*") {
		t.Errorf("figure output incomplete:\n%s", out.String())
	}
}

func TestRunNothingSelected(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "bogus"}, &out, &errBuf); err == nil {
		t.Error("unknown experiment selection should error")
	}
}
