// Command figures regenerates every table and figure of the Klotski
// paper's evaluation section on synthetic Meta-style topologies.
//
// Usage:
//
//	figures [-exp all|table1|table3|fig8|fig9|fig10|fig11|fig12|fig13] [-scale 0.25] [-timeout 2m]
//
// At -scale 1 the generated topologies approximate the paper's Table-3
// sizes (up to ~10,000 switches); the default 0.25 reproduces every
// qualitative result in a few minutes on a laptop. Planner failures
// (unsupported migration type, infeasible constraints, exhausted budget)
// render as crosses, as in the paper's figures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"klotski/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: all, table1, table3, fig8, fig9, fig10, fig11, fig12, fig13, types (comma-separated)")
	scale := fs.Float64("scale", 0.25, "topology scale (1 = paper-sized Table 3)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-planner time budget")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	jsonOut := map[string]any{}

	cfg := experiments.Config{Scale: *scale, Timeout: *timeout}
	selected := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }
	ran := 0

	if want("table1") {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		if *asJSON {
			jsonOut["table1"] = rows
		} else {
			experiments.PrintTable1(stdout, rows)
		}
		ran++
	}
	if want("table3") {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return fmt.Errorf("table3: %w", err)
		}
		if *asJSON {
			jsonOut["table3"] = rows
		} else {
			experiments.PrintTable3(stdout, rows, *scale)
		}
		ran++
	}
	figs := []struct {
		name  string
		title string
		run   func(experiments.Config) ([]experiments.CaseResult, error)
	}{
		{"fig8", "Figure 8: planners vs topology size (A–E, HGRID V1→V2)", experiments.Fig8},
		{"fig9", "Figure 9: planners vs migration type (E, E-DMAG, E-SSW)", experiments.Fig9},
		{"fig10", "Figure 10: Klotski design ablations (w/o OB, w/o A*, w/o ESC)", experiments.Fig10},
		{"fig11", "Figure 11: operation-block factor sweep (topology E)", experiments.Fig11},
		{"fig12", "Figure 12: utilization-bound sweep θ=55–95% (topology E)", experiments.Fig12},
		{"fig13", "Figure 13: cost-function sweep α=0–1 (topology E)", experiments.Fig13},
		{"types", "Extension: action-type granularity (|A|=2 vs |A|=4 on topology C)", experiments.TypeGranularity},
	}
	for _, f := range figs {
		if !want(f.name) {
			continue
		}
		rows, err := f.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		if *asJSON {
			jsonOut[f.name] = rows
		} else {
			experiments.PrintCaseResults(stdout, f.title, rows)
		}
		ran++
	}
	if *asJSON && ran > 0 {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			return err
		}
	}
	if ran == 0 {
		return fmt.Errorf("nothing selected by -exp=%s", *exp)
	}
	return nil
}
