package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"klotski"
)

func TestRunSuiteEmitsValidNPD(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-suite", "B", "-scale", "0.15"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	doc, err := klotski.LoadNPD(&out)
	if err != nil {
		t.Fatalf("emitted NPD invalid: %v", err)
	}
	if doc.Name != "B" || doc.Migration == nil {
		t.Errorf("document = %+v", doc)
	}
	// The emitted document must build a plannable scenario.
	s, err := doc.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := klotski.PlanAStar(s.Task, klotski.Options{}); err != nil {
		t.Fatalf("emitted scenario unplannable: %v", err)
	}
}

func TestRunSuiteVariantsCarryMigrations(t *testing.T) {
	cases := map[string]string{
		"A":      "hgrid-v1-v2",
		"E-DMAG": "dmag",
		"E-SSW":  "ssw-forklift",
	}
	for suite, kind := range cases {
		var out, errBuf bytes.Buffer
		if err := run([]string{"-suite", suite, "-scale", "0.12"}, &out, &errBuf); err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		doc, err := klotski.LoadNPD(&out)
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		if doc.Migration.Kind != kind {
			t.Errorf("%s migration kind = %s, want %s", suite, doc.Migration.Kind, kind)
		}
	}
}

func TestRunStats(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-suite", "A", "-scale", "0.2", "-stats"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"switches:", "circuits:", "migration:", "demands:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCustomRegion(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-dcs", "1", "-pods", "2", "-rsw", "2", "-planes", "4",
		"-ssw", "2", "-grids", "4", "-fadu", "2", "-fauu", "1", "-ebs", "2"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	doc, err := klotski.LoadNPD(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Fabric) != 1 || doc.HGRID.Grids != 4 {
		t.Errorf("custom document = %+v", doc)
	}
}

func TestRunCustomDMAGGetsMAPart(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-migration", "dmag"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	doc, err := klotski.LoadNPD(&out)
	if err != nil {
		t.Fatal(err)
	}
	if doc.MA == nil || doc.MA.PerEB != 2 {
		t.Error("DMAG document should carry an MA part")
	}
}

func TestRunWritesFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "r.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-suite", "A", "-scale", "0.2", "-o", p}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"hgrid"`) {
		t.Error("written file missing hgrid part")
	}
}

func TestRunUnknownSuite(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-suite", "Z"}, &out, &errBuf); err == nil {
		t.Error("unknown suite should error")
	}
}
