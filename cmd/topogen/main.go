// Command topogen synthesizes Meta-style region topologies and emits them
// as NPD documents for cmd/klotski, or prints their statistics.
//
// Usage:
//
//	topogen -suite E -scale 0.25 [-o region.json]   # a Table-3 case
//	topogen -dcs 3 -pods 8 -rsw 6 -planes 4 -ssw 8 -grids 4 \
//	        -migration hgrid-v1-v2 [-o region.json] # a custom region
//	topogen -suite E -scale 0.25 -stats             # sizes only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"klotski"
	"klotski/internal/gen"
	"klotski/internal/npd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite   = fs.String("suite", "", "Table-3 scenario to emit: "+strings.Join(klotski.SuiteNames(), ", "))
		scale   = fs.Float64("scale", 0.25, "topology scale for -suite (1 = paper-sized)")
		outPath = fs.String("o", "", "write the NPD document here (default stdout)")
		stats   = fs.Bool("stats", false, "print topology statistics instead of NPD")

		// Custom-region flags (used when -suite is empty).
		mig    = fs.String("migration", npd.MigrationHGRID, "migration kind: hgrid-v1-v2, ssw-forklift, dmag")
		dcs    = fs.Int("dcs", 2, "datacenter buildings")
		pods   = fs.Int("pods", 4, "pods per building")
		rsw    = fs.Int("rsw", 4, "rack switches per pod")
		planes = fs.Int("planes", 4, "spine planes")
		ssw    = fs.Int("ssw", 4, "spine switches per plane")
		grids  = fs.Int("grids", 4, "HGRID grids")
		fadu   = fs.Int("fadu", 4, "FADUs per grid")
		fauu   = fs.Int("fauu", 2, "FAUUs per grid")
		ebs    = fs.Int("ebs", 4, "EB routers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var doc *npd.Document
	if *suite != "" {
		s, err := klotski.Suite(*suite, *scale)
		if err != nil {
			return err
		}
		doc = npd.FromRegionParams(s.Name, s.Region.Params)
		doc.Migration = suiteMigration(*suite)
		if doc.Migration.Kind == npd.MigrationDMAG {
			doc.MA = &npd.MAPart{PerEB: 2}
		}
		if *stats {
			printStats(stdout, s)
			return nil
		}
	} else {
		params := gen.RegionParams{
			Name: "custom-region",
			HGRID: gen.HGRIDParams{
				Grids: *grids, FADUPerGrid: *fadu, FAUUPerGrid: *fauu,
			},
			EBs: *ebs, DRs: (*ebs + 1) / 2, EBBs: 2,
		}
		for d := 0; d < *dcs; d++ {
			params.DCs = append(params.DCs, gen.FabricParams{
				Pods: *pods, RSWPerPod: *rsw, Planes: *planes, SSWPerPlane: *ssw,
			})
		}
		doc = npd.FromRegionParams(params.Name, params)
		doc.Migration = &npd.MigrationPart{Kind: *mig}
		if *mig == npd.MigrationDMAG {
			doc.MA = &npd.MAPart{PerEB: 2}
		}
		if *stats {
			s, err := doc.Scenario()
			if err != nil {
				return err
			}
			printStats(stdout, s)
			return nil
		}
	}
	if err := doc.Validate(); err != nil {
		return fmt.Errorf("generated document invalid: %w", err)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return doc.Encode(out)
}

// suiteMigration reproduces the migration part matching a Table-3 case.
func suiteMigration(suite string) *npd.MigrationPart {
	switch suite {
	case "E-DMAG":
		return &npd.MigrationPart{Kind: npd.MigrationDMAG}
	case "E-SSW":
		return &npd.MigrationPart{Kind: npd.MigrationForklift, DC: 0}
	default:
		return &npd.MigrationPart{Kind: npd.MigrationHGRID}
	}
}

func printStats(w io.Writer, s *klotski.Scenario) {
	st := s.Task.Topo.Stats()
	ts := s.Task.Stats()
	fmt.Fprintf(w, "%s: %s\n", s.Name, s.Description)
	fmt.Fprintf(w, "  switches: %d active / %d universe\n", st.Switches, st.TotalSwitches)
	fmt.Fprintf(w, "  circuits: %d up / %d universe, %.1f Tbps\n", st.Circuits, st.TotalCircuits, st.Capacity)
	fmt.Fprintf(w, "  migration: %d switch ops in %d blocks of %d types, %.1f Tbps affected\n",
		ts.Switches, ts.Actions, ts.ActionTypes, ts.AffectedTbps)
	fmt.Fprintf(w, "  demands: %d entries, %.1f Tbps total, base util %.2f\n",
		s.Task.Demands.Len(), s.Task.Demands.Total(), s.BaseUtil)
}
